//! Virtual time types.
//!
//! All platform models operate on a shared virtual timeline measured in
//! nanoseconds since simulation start. [`SimTime`] is a point on that
//! timeline; [`SimDuration`] is a (non-negative) span between two points.
//!
//! Nanosecond `u64` resolution covers ~584 years of virtual time, far beyond
//! any experiment here (the longest, the Figure 1 environmental-database
//! window, is about one hour).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point on the virtual timeline, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative input clamps to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`; zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`, or `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Advance by `d`, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Quantize *down* onto a grid of period `period` anchored at `anchor`.
    ///
    /// This models sensors that only refresh every `period`: a query at time
    /// `t` observes the value generated at `t.grid_floor(anchor, period)`.
    /// Queries before `anchor` observe the `anchor` generation itself.
    #[inline]
    pub fn grid_floor(self, anchor: SimTime, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "grid period must be positive");
        if self.0 <= anchor.0 {
            return anchor;
        }
        let offset = (self.0 - anchor.0) / period.0;
        SimTime(anchor.0 + offset * period.0)
    }

    /// Index of the grid slot containing `self` (0 for anything at/before
    /// `anchor`). Used to derive order-independent per-slot noise.
    #[inline]
    pub fn grid_index(self, anchor: SimTime, period: SimDuration) -> u64 {
        assert!(period.0 > 0, "grid period must be positive");
        if self.0 <= anchor.0 {
            0
        } else {
            (self.0 - anchor.0) / period.0
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative input clamps to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True iff the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Scale by a non-negative float (e.g. jitter factors). Panics on NaN or
    /// negative input.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "scale must be finite and >= 0");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: experiment horizon exceeded u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(d.0)
                .expect("SimTime underflow: subtracted past the simulation origin"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime subtraction would be negative; use saturating_since"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    #[inline]
    fn div(self, other: SimDuration) -> u64 {
        assert!(other.0 > 0, "division by zero duration");
        self.0 / other.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn rem(self, other: SimDuration) -> SimDuration {
        assert!(other.0 > 0, "modulo by zero duration");
        SimDuration(self.0 % other.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // HH:MM:SS.mmm on the virtual clock, handy for Figure-1-style axes.
        let total_ms = self.0 / 1_000_000;
        let ms = total_ms % 1_000;
        let s = (total_ms / 1_000) % 60;
        let m = (total_ms / 60_000) % 60;
        let h = total_ms / 3_600_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".to_owned()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t, SimTime::from_millis(1_500));
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!(t + d, SimTime::from_millis(10_250));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_millis(9_750));
        assert_eq!(d * 4, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / d, 4);
        assert_eq!(
            SimDuration::from_millis(1_100) % d,
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn saturating_ops() {
        let t = SimTime::from_secs(1);
        assert_eq!(t.saturating_since(SimTime::from_secs(5)), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(t.checked_since(SimTime::from_secs(5)), None);
        assert_eq!(
            t.checked_since(SimTime::ZERO),
            Some(SimDuration::from_secs(1))
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics() {
        let _ = SimTime::from_secs(1) - SimDuration::from_secs(2);
    }

    #[test]
    fn grid_floor_basics() {
        let anchor = SimTime::from_secs(10);
        let period = SimDuration::from_millis(100);
        // Before the anchor: clamps to the anchor generation.
        assert_eq!(SimTime::from_secs(3).grid_floor(anchor, period), anchor);
        // Exactly on a slot boundary.
        assert_eq!(
            SimTime::from_millis(10_200).grid_floor(anchor, period),
            SimTime::from_millis(10_200)
        );
        // Mid-slot floors down.
        assert_eq!(
            SimTime::from_millis(10_257).grid_floor(anchor, period),
            SimTime::from_millis(10_200)
        );
        assert_eq!(SimTime::from_millis(10_257).grid_index(anchor, period), 2);
        assert_eq!(SimTime::from_secs(3).grid_index(anchor, period), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_661_042).to_string(), "01:01:01.042");
        assert_eq!(SimDuration::from_millis(1_100).to_string(), "1.100s");
        assert_eq!(SimDuration::from_micros(30).to_string(), "30.000us");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(format!("{:?}", SimTime::from_secs(2)), "t+2s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_millis(100).mul_f64(0.5),
            SimDuration::from_millis(50)
        );
        assert_eq!(
            SimDuration::from_nanos(3).mul_f64(0.5),
            SimDuration::from_nanos(2)
        );
    }
}
