//! Property tests for the batched collection planner.
//!
//! The planner's contract is that it changes the *charged cost*, never the
//! data: with a [`CollectionPlan`] attached, output files and completeness
//! ledgers must be byte-identical to the naive per-agent run — across
//! seeds, workloads, domain shapes, and fault rates — while the cache
//! ledger reconciles exactly with the poll counts.

use hpc_workloads::{Channel, WorkloadProfile};
use moneq::backends::BgqBackend;
use moneq::{ClusterResult, ClusterRun, CollectionPlan, MonEqConfig};
use proptest::prelude::*;
use simkit::{FaultPlan, SimDuration, SimTime};
use std::sync::Arc;

const HORIZON: SimTime = SimTime::from_secs(4);

fn workload(steady: bool) -> WorkloadProfile {
    if steady {
        let mut p = WorkloadProfile::new("steady", SimDuration::from_secs(4));
        p.set_demand(
            Channel::Cpu,
            powermodel::PhaseBuilder::new()
                .phase(SimDuration::from_secs(4), 0.7)
                .build(),
        );
        p
    } else {
        hpc_workloads::Mmps::figure1().profile()
    }
}

/// Drive `agents` EMON agents on one shared node card. `domain = None` is
/// the naive per-agent run; `faulted_ranks` get a fault gate at `rate`.
fn run(
    seed: u64,
    agents: usize,
    domain: Option<usize>,
    rate: f64,
    steady: bool,
    faulted_ranks: &[usize],
    telemetry: bool,
) -> ClusterResult {
    let plan = FaultPlan::uniform(seed, rate);
    let mut machine = bgq_sim::BgqMachine::new(bgq_sim::BgqConfig::default(), seed);
    machine.assign_job(&[0], &workload(steady));
    let machine = Arc::new(machine);
    let config = MonEqConfig {
        telemetry,
        ..MonEqConfig::default()
    };
    let mut cluster = ClusterRun::launch_with(
        agents,
        |rank| {
            let b = BgqBackend::new(machine.clone(), 0);
            if faulted_ranks.contains(&rank) {
                Box::new(b.with_faults(&plan, &format!("nodecard{rank}")))
            } else {
                Box::new(b)
            }
        },
        |rank| format!("agent{rank:02}"),
        SimTime::ZERO,
        config,
    );
    if let Some(d) = domain {
        cluster = cluster.with_collection_plan(CollectionPlan::shared(d));
    }
    cluster.run_until(HORIZON);
    cluster.finalize(HORIZON)
}

proptest! {
    #![proptest_config(ProptestConfig::scaled(12))]

    /// The headline safety property: whatever the seed, workload, domain
    /// shape, and fault rate, turning the plan on changes no output byte
    /// and no completeness counter.
    #[test]
    fn planned_outputs_are_byte_identical_to_naive(
        seed in 0u64..1_000_000,
        agents in 1usize..=20,
        domain in 1usize..=8,
        rate_idx in 0usize..3,
        steady in any::<bool>(),
    ) {
        let rate = [0.0, 0.05, 0.15][rate_idx];
        let faulted: Vec<usize> = if rate > 0.0 { (0..agents).collect() } else { Vec::new() };
        let naive = run(seed, agents, None, rate, steady, &faulted, false);
        let planned = run(seed, agents, Some(domain), rate, steady, &faulted, false);
        prop_assert_eq!(&naive.files, &planned.files);
        prop_assert_eq!(&naive.completeness, &planned.completeness);
    }

    /// Under zero faults the implicit leader election is exact: one leader
    /// fetch per domain-generation, every other lookup a hit, and the cache
    /// ledger reconciles with the poll counts to the last poll.
    #[test]
    fn zero_fault_ledger_reconciles_with_poll_counts(
        seed in 0u64..1_000_000,
        domain in 2usize..=8,
        domains in 1usize..=3,
    ) {
        let agents = domain * domains;
        let naive = run(seed, agents, None, 0.0, true, &[], false);
        let planned = run(seed, agents, Some(domain), 0.0, true, &[], false);
        prop_assert_eq!(&naive.files, &planned.files);
        let polls = planned.completeness[0][0].scheduled;
        let scheduled: u64 = planned
            .completeness
            .iter()
            .flatten()
            .map(|c| c.scheduled)
            .sum();
        prop_assert_eq!(planned.cache.lookups(), scheduled);
        prop_assert_eq!(planned.cache.misses, polls * domains as u64);
        prop_assert_eq!(planned.cache.hits, polls * (agents - domains) as u64);
        prop_assert_eq!(planned.cache.bypasses, 0);
        // Followers are free: charged collection drops by the domain factor.
        let total = |r: &ClusterResult| {
            r.overheads
                .iter()
                .fold(SimDuration::ZERO, |acc, o| acc + o.collection)
        };
        prop_assert_eq!(total(&naive), total(&planned) * domain as u64);
    }
}

/// A faulted leader must never hide behind the cache: its failed reads are
/// published as failure markers and every follower bypasses the cache with
/// a live read of its own. Only rank 0 (the implicit leader) is faulted,
/// so every bypass is a follower refusing a failed generation.
#[test]
fn faulted_leader_forces_followers_to_bypass() {
    let (seed, agents) = (11, 8);
    let naive = run(seed, agents, None, 0.25, true, &[0], false);
    let planned = run(seed, agents, Some(agents), 0.25, true, &[0], false);
    assert_eq!(naive.files, planned.files);
    assert_eq!(naive.completeness, planned.completeness);
    assert!(
        planned.cache.bypasses > 0,
        "leader failures never reached the followers: {:?}",
        planned.cache
    );
    // The fault-free followers stay clean even while their leader fails —
    // a failed generation is re-read live, never served stale.
    for c in planned.completeness.iter().skip(1).flatten() {
        assert!(c.is_clean(), "follower degraded by leader's faults: {c:?}");
    }
    // Once rank 0's device is disabled it stops publishing and rank 1
    // takes over as leader; misses keep accruing either way.
    assert!(planned.cache.misses > 0);
}

/// The telemetry counters are the cache ledger, event for event.
#[test]
fn telemetry_counters_match_the_cache_ledger() {
    let (seed, agents, domain) = (2015, 8, 4);
    let planned = run(
        seed,
        agents,
        Some(domain),
        0.15,
        true,
        &(0..8).collect::<Vec<_>>(),
        true,
    );
    let merged = planned.telemetry_merged();
    let count = |prefix: &str| -> u64 {
        merged
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    };
    assert_eq!(count("cache.hit/"), planned.cache.hits);
    assert_eq!(count("cache.miss/"), planned.cache.misses);
    assert_eq!(count("cache.bypass/"), planned.cache.bypasses);
    assert!(planned.cache.lookups() > 0);
}
