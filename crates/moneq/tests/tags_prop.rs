//! Property tests for tag pairing.

use moneq::tags::{pair_tags, TagEvent, TagKind};
use proptest::prelude::*;
use simkit::SimTime;

/// Generate a balanced, possibly nested tag sequence by simulating a stack
/// of open tags over increasing timestamps.
fn balanced_events() -> impl Strategy<Value = Vec<TagEvent>> {
    prop::collection::vec((0u8..3, "[a-c]"), 1..40).prop_map(|ops| {
        let mut events = Vec::new();
        let mut open: Vec<String> = Vec::new();
        let mut t = 0u64;
        for (op, label) in ops {
            t += 1;
            match op {
                // Open a new tag.
                0 | 1 => {
                    open.push(label.clone());
                    events.push(TagEvent {
                        label,
                        kind: TagKind::Start,
                        at: SimTime::from_secs(t),
                    });
                }
                // Close the innermost open tag, if any.
                _ => {
                    if let Some(l) = open.pop() {
                        events.push(TagEvent {
                            label: l,
                            kind: TagKind::End,
                            at: SimTime::from_secs(t),
                        });
                    }
                }
            }
        }
        // Close whatever is still open, innermost first.
        while let Some(l) = open.pop() {
            t += 1;
            events.push(TagEvent {
                label: l,
                kind: TagKind::End,
                at: SimTime::from_secs(t),
            });
        }
        events
    })
}

proptest! {
    #[test]
    fn balanced_sequences_always_pair(events in balanced_events()) {
        let spans = pair_tags(&events).expect("balanced input must pair");
        prop_assert_eq!(spans.len() * 2, events.len());
        for (label, start, end) in &spans {
            prop_assert!(start <= end, "span {} inverted", label);
        }
        // Spans are sorted by start.
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn dropping_one_event_from_balanced_input_fails_or_shrinks(
        events in balanced_events(),
        drop_at in any::<prop::sample::Index>(),
    ) {
        prop_assume!(events.len() >= 2);
        let mut mutated = events.clone();
        mutated.remove(drop_at.index(mutated.len()));
        match pair_tags(&mutated) {
            // Usually the sequence becomes unbalanced…
            Err(_) => {}
            // …but dropping a whole start/end of a label that appears
            // elsewhere can stay balanced; then one span must be lost.
            Ok(spans) => {
                let original = pair_tags(&events).unwrap();
                prop_assert!(spans.len() < original.len());
            }
        }
    }

    #[test]
    fn end_before_start_always_rejected(label in "[a-z]{1,5}", t in 1u64..1_000) {
        let events = vec![
            TagEvent { label: label.clone(), kind: TagKind::End, at: SimTime::from_secs(t) },
            TagEvent { label, kind: TagKind::Start, at: SimTime::from_secs(t + 1) },
        ];
        prop_assert!(pair_tags(&events).is_err());
    }
}
