//! The tagging feature (§III).
//!
//! "This feature allows for sections of code to be wrapped in start/end
//! tags which inject special markers in the output files for later
//! processing. … if an application had three 'work loops' and a user wanted
//! to have separate profiles for each, all that is necessary is a total of
//! 6 lines of code."

use simkit::SimTime;

/// Start or end of a tagged section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagKind {
    /// Section start.
    Start,
    /// Section end.
    End,
}

impl TagKind {
    /// Marker text used in output files.
    pub fn marker(self) -> &'static str {
        match self {
            TagKind::Start => "START",
            TagKind::End => "END",
        }
    }
}

/// One tag marker recorded during the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagEvent {
    /// Tag label.
    pub label: String,
    /// Start or end.
    pub kind: TagKind,
    /// When the tag call was made.
    pub at: SimTime,
}

/// Pair up start/end markers into spans; unmatched markers are returned as
/// errors by label (the post-processing step the paper defers to after the
/// program completes).
pub fn pair_tags(events: &[TagEvent]) -> Result<Vec<(String, SimTime, SimTime)>, String> {
    let mut open: Vec<(String, SimTime)> = Vec::new();
    let mut spans = Vec::new();
    for e in events {
        match e.kind {
            TagKind::Start => open.push((e.label.clone(), e.at)),
            TagKind::End => {
                let idx = open
                    .iter()
                    .rposition(|(l, _)| *l == e.label)
                    .ok_or_else(|| format!("END without START for tag '{}'", e.label))?;
                let (label, start) = open.remove(idx);
                if e.at < start {
                    return Err(format!("tag '{label}' ends before it starts"));
                }
                spans.push((label, start, e.at));
            }
        }
    }
    if let Some((label, _)) = open.first() {
        return Err(format!("START without END for tag '{label}'"));
    }
    spans.sort_by_key(|&(_, s, _)| s);
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str, kind: TagKind, s: u64) -> TagEvent {
        TagEvent {
            label: label.into(),
            kind,
            at: SimTime::from_secs(s),
        }
    }

    #[test]
    fn three_work_loops_pair_up() {
        let events = vec![
            ev("loop1", TagKind::Start, 1),
            ev("loop1", TagKind::End, 5),
            ev("loop2", TagKind::Start, 6),
            ev("loop2", TagKind::End, 9),
            ev("loop3", TagKind::Start, 10),
            ev("loop3", TagKind::End, 20),
        ];
        let spans = pair_tags(&events).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].0, "loop1");
        assert_eq!(spans[2].2, SimTime::from_secs(20));
    }

    #[test]
    fn nested_tags_allowed() {
        let events = vec![
            ev("outer", TagKind::Start, 1),
            ev("inner", TagKind::Start, 2),
            ev("inner", TagKind::End, 3),
            ev("outer", TagKind::End, 4),
        ];
        let spans = pair_tags(&events).unwrap();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn repeated_label_matches_innermost() {
        let events = vec![
            ev("x", TagKind::Start, 1),
            ev("x", TagKind::Start, 2),
            ev("x", TagKind::End, 3),
            ev("x", TagKind::End, 4),
        ];
        let spans = pair_tags(&events).unwrap();
        assert_eq!(
            spans[0],
            ("x".into(), SimTime::from_secs(1), SimTime::from_secs(4))
        );
        assert_eq!(
            spans[1],
            ("x".into(), SimTime::from_secs(2), SimTime::from_secs(3))
        );
    }

    #[test]
    fn unmatched_markers_error() {
        assert!(pair_tags(&[ev("a", TagKind::Start, 1)]).is_err());
        assert!(pair_tags(&[ev("a", TagKind::End, 1)]).is_err());
    }
}
