//! The completeness report: what was collected, what was lost.
//!
//! §IV's "stated limitations" request, extended to the failure axis: a
//! production collector must not only collect, it must *account* — for
//! every device, how many polls were scheduled, how many succeeded, how
//! many fell back to the last good value, how many yielded nothing, and
//! how many records each outcome represents. The invariants are exact:
//!
//! * `scheduled == succeeded + stale_polls + missed_polls`
//! * `records_expected() == records_fresh + records_stale + records_lost`
//!
//! and are enforced by the fault property tests, serial and parallel.
//!
//! ```
//! use moneq::Completeness;
//!
//! let mut c = Completeness::new("gpu0");
//! c.scheduled = 10;
//! c.succeeded = 8;
//! c.stale_polls = 1;
//! c.missed_polls = 1;
//! c.records_fresh = 8;
//! c.records_stale = 1;
//! c.records_lost = 1;
//! assert!(c.reconciles());
//! assert_eq!(c.records_expected(), 10);
//! assert!((c.fresh_fraction() - 0.8).abs() < 1e-12);
//! ```

use std::borrow::Cow;

/// Per-device completeness counters for one session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Completeness {
    /// Device (backend) the counters describe. Borrowed for the common
    /// case — [`crate::EnvBackend::name`] returns `&'static str`, so the
    /// 49k sessions of a cluster launch allocate no name strings — and
    /// owned when parsed back from an output file.
    pub device: Cow<'static, str>,
    /// Timer fires that scheduled a poll of this device (including fires
    /// after the device was disabled).
    pub scheduled: u64,
    /// Polls whose read ultimately returned data (possibly after retries).
    pub succeeded: u64,
    /// Retry attempts performed across all polls.
    pub retried: u64,
    /// Polls that failed outright and were served from the last good value.
    pub stale_polls: u64,
    /// Polls that yielded nothing at all (no last good value to substitute,
    /// or the device was disabled).
    pub missed_polls: u64,
    /// Fresh records collected.
    pub records_fresh: u64,
    /// Stale records: last-good-value substitutes plus glitched samples the
    /// mechanism served while failing.
    pub records_stale: u64,
    /// Records lost: silently dropped by the mechanism, or never produced
    /// because the poll missed entirely.
    pub records_lost: u64,
    /// Virtual-time nanosecond at which the device was disabled after too
    /// many consecutive failures; `None` if it stayed enabled.
    pub disabled_at_ns: Option<u64>,
    /// Ranks on which the device was disabled (sorted, deduplicated).
    /// A session records its own rank here at disable time; cluster merges
    /// take the set union, so a device disabled on several ranks counts
    /// each rank exactly once no matter how reports are merged.
    pub disabled_ranks: Vec<u32>,
}

impl Completeness {
    /// Fresh counters for `device`.
    pub fn new(device: impl Into<Cow<'static, str>>) -> Self {
        Completeness {
            device: device.into(),
            ..Completeness::default()
        }
    }

    /// Records the run should account for: every record either arrived
    /// fresh, arrived stale, or is known lost.
    pub fn records_expected(&self) -> u64 {
        self.records_fresh + self.records_stale + self.records_lost
    }

    /// Do the counters reconcile exactly? (The two completeness
    /// invariants; trivially true for a clean run.)
    pub fn reconciles(&self) -> bool {
        self.scheduled == self.succeeded + self.stale_polls + self.missed_polls
    }

    /// `true` when no fault left any trace: nothing retried, stale,
    /// missed, lost, or disabled. Clean reports are omitted from output
    /// files so un-faulted runs stay byte-identical.
    pub fn is_clean(&self) -> bool {
        self.retried == 0
            && self.stale_polls == 0
            && self.missed_polls == 0
            && self.records_stale == 0
            && self.records_lost == 0
            && self.disabled_at_ns.is_none()
            && self.disabled_ranks.is_empty()
    }

    /// How many distinct ranks disabled this device. Unlike counting
    /// disables across merges naively, this cannot double-count: a rank
    /// appears in [`Completeness::disabled_ranks`] at most once however
    /// many partial reports mentioning it are absorbed.
    pub fn disabled_count(&self) -> usize {
        self.disabled_ranks.len()
    }

    /// Record that rank `rank` disabled this device (idempotent).
    pub fn mark_disabled(&mut self, rank: u32, at_ns: u64) {
        self.disabled_at_ns = Some(match self.disabled_at_ns {
            Some(prev) => prev.min(at_ns),
            None => at_ns,
        });
        if let Err(pos) = self.disabled_ranks.binary_search(&rank) {
            self.disabled_ranks.insert(pos, rank);
        }
    }

    /// Fraction of expected records that arrived fresh (1.0 for an empty
    /// report).
    pub fn fresh_fraction(&self) -> f64 {
        let expected = self.records_expected();
        if expected == 0 {
            1.0
        } else {
            self.records_fresh as f64 / expected as f64
        }
    }

    /// Fold another device's counters into this one (used to aggregate
    /// across ranks; `disabled_at_ns` keeps the earliest disable).
    pub fn absorb(&mut self, other: &Completeness) {
        self.scheduled += other.scheduled;
        self.succeeded += other.succeeded;
        self.retried += other.retried;
        self.stale_polls += other.stale_polls;
        self.missed_polls += other.missed_polls;
        self.records_fresh += other.records_fresh;
        self.records_stale += other.records_stale;
        self.records_lost += other.records_lost;
        self.disabled_at_ns = match (self.disabled_at_ns, other.disabled_at_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // Set union keyed by (device, rank): a rank already present is not
        // inserted again, so repeated or overlapping merges cannot inflate
        // the disable count.
        for &r in &other.disabled_ranks {
            if let Err(pos) = self.disabled_ranks.binary_search(&r) {
                self.disabled_ranks.insert(pos, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_reconciles_trivially() {
        let mut c = Completeness::new("dev");
        c.scheduled = 5;
        c.succeeded = 5;
        c.records_fresh = 5;
        assert!(c.reconciles());
        assert!(c.is_clean());
        assert_eq!(c.fresh_fraction(), 1.0);
    }

    #[test]
    fn absorb_sums_and_keeps_earliest_disable() {
        let mut a = Completeness::new("dev");
        a.scheduled = 3;
        a.succeeded = 2;
        a.missed_polls = 1;
        a.records_lost = 1;
        let mut b = Completeness::new("dev");
        b.scheduled = 4;
        b.succeeded = 4;
        b.records_fresh = 4;
        b.disabled_at_ns = Some(9);
        a.absorb(&b);
        assert_eq!(a.scheduled, 7);
        assert_eq!(a.succeeded, 6);
        assert_eq!(a.disabled_at_ns, Some(9));
        assert!(a.reconciles());
        let mut c = Completeness::new("dev");
        c.disabled_at_ns = Some(4);
        a.absorb(&c);
        assert_eq!(a.disabled_at_ns, Some(4));
    }

    #[test]
    fn absorb_dedupes_disables_by_rank() {
        // Regression: a device disabled on several ranks must count each
        // rank once, however the partial reports are merged (including a
        // rank appearing in more than one partial merge).
        let mut part_a = Completeness::new("dev");
        part_a.mark_disabled(3, 900);
        part_a.mark_disabled(7, 400);
        let mut part_b = Completeness::new("dev");
        part_b.mark_disabled(7, 650); // rank 7 again, later instant
        part_b.mark_disabled(1, 500);
        let mut merged = Completeness::new("dev");
        merged.absorb(&part_a);
        merged.absorb(&part_b);
        merged.absorb(&part_a); // overlapping re-merge must not inflate
        assert_eq!(merged.disabled_ranks, vec![1, 3, 7]);
        assert_eq!(merged.disabled_count(), 3);
        assert_eq!(merged.disabled_at_ns, Some(400), "earliest disable wins");
        assert!(!merged.is_clean());
    }

    #[test]
    fn mark_disabled_is_idempotent_and_keeps_earliest() {
        let mut c = Completeness::new("dev");
        c.mark_disabled(5, 200);
        c.mark_disabled(5, 100);
        c.mark_disabled(5, 300);
        assert_eq!(c.disabled_ranks, vec![5]);
        assert_eq!(c.disabled_at_ns, Some(100));
    }

    #[test]
    fn empty_report_is_fully_fresh() {
        let c = Completeness::new("dev");
        assert_eq!(c.fresh_fraction(), 1.0);
        assert!(c.is_clean() && c.reconciles());
    }
}
