//! Columnar storage for collected records.
//!
//! §III's MonEQ "allocates an array of a custom C struct"; the first
//! reproduction stored a `Vec<DataPoint>`, which pays two heap `String`s
//! per record for labels that a mechanism draws from a vocabulary of a
//! handful (`nodecard` × `Chip Core`/`DRAM`/…). [`Records`] stores the same
//! data as **column arenas**: device and domain labels are interned once
//! into small per-file tables, and each record is a fixed-width row across
//! dense columns — one timestamp, two label indices, four `f64` channels,
//! and a flags byte carrying staleness plus per-channel presence bits.
//! Appending a poll's records allocates nothing in steady state, and output
//! rendering iterates the arenas zero-copy through [`DataPointRef`].
//!
//! Label tables are filled in first-appearance order, so two [`Records`]
//! built from the same logical sequence — serial or parallel, rendered or
//! re-parsed — are structurally identical and derive `PartialEq` compares
//! them exactly.

use crate::reading::DataPoint;
use simkit::SimTime;

const STALE: u8 = 1 << 0;
const HAS_VOLTS: u8 = 1 << 1;
const HAS_AMPS: u8 = 1 << 2;
const HAS_TEMP: u8 = 1 << 3;

/// The collected records of one session, stored columnar (see module docs).
///
/// The column block lives behind a lazily allocated box: an empty arena is
/// one null pointer, not ten empty `Vec` headers. A cluster launch builds
/// one [`Records`] per rank before any poll fires, and at 49k ranks the
/// difference (8 bytes vs 240 bytes of zeros per session) is a measurable
/// slice of launch wall clock. The box is created on the first append and
/// never removed, so `cols.is_some()` ⟺ the arena holds at least one
/// record — which keeps derived `PartialEq` exact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Records {
    cols: Option<Box<Columns>>,
}

/// The dense column block of a non-empty [`Records`] arena.
#[derive(Clone, Debug, Default, PartialEq)]
struct Columns {
    devices: Vec<String>,
    domains: Vec<String>,
    timestamps: Vec<SimTime>,
    device_ids: Vec<u32>,
    domain_ids: Vec<u32>,
    watts: Vec<f64>,
    volts: Vec<f64>,
    amps: Vec<f64>,
    temp_c: Vec<f64>,
    flags: Vec<u8>,
}

/// A zero-copy view of one record in a [`Records`] arena: the same fields
/// as [`DataPoint`] with the labels borrowed from the intern tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataPointRef<'a> {
    /// When the poll fired (virtual time).
    pub timestamp: SimTime,
    /// Device within the node (see [`DataPoint::device`]).
    pub device: &'a str,
    /// Domain within the device (see [`DataPoint::domain`]).
    pub domain: &'a str,
    /// Power, watts.
    pub watts: f64,
    /// Rail voltage, volts (platforms that expose it).
    pub volts: Option<f64>,
    /// Rail current, amperes (platforms that expose it).
    pub amps: Option<f64>,
    /// Temperature, °C (platforms that expose it).
    pub temp_c: Option<f64>,
    /// Degradation marker (see [`DataPoint::stale`]).
    pub stale: bool,
}

impl DataPointRef<'_> {
    /// Materialize an owned [`DataPoint`].
    pub fn to_point(&self) -> DataPoint {
        DataPoint {
            timestamp: self.timestamp,
            device: self.device.to_owned(),
            domain: self.domain.to_owned(),
            watts: self.watts,
            volts: self.volts,
            amps: self.amps,
            temp_c: self.temp_c,
            stale: self.stale,
        }
    }
}

fn intern(table: &mut Vec<String>, label: String) -> u32 {
    match table.iter().position(|t| *t == label) {
        Some(i) => i as u32,
        None => {
            table.push(label);
            (table.len() - 1) as u32
        }
    }
}

impl Records {
    /// An empty arena.
    pub fn new() -> Self {
        Records::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.cols.as_ref().map_or(0, |c| c.timestamps.len())
    }

    /// `true` when no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.cols.is_none()
    }

    /// Append one record, interning its labels (moves the `String`s on a
    /// label's first appearance; no allocation afterwards).
    pub fn push(&mut self, p: DataPoint) {
        let c = self.cols.get_or_insert_with(Default::default);
        let device = intern(&mut c.devices, p.device);
        let domain = intern(&mut c.domains, p.domain);
        let mut flags = 0u8;
        if p.stale {
            flags |= STALE;
        }
        if p.volts.is_some() {
            flags |= HAS_VOLTS;
        }
        if p.amps.is_some() {
            flags |= HAS_AMPS;
        }
        if p.temp_c.is_some() {
            flags |= HAS_TEMP;
        }
        c.timestamps.push(p.timestamp);
        c.device_ids.push(device);
        c.domain_ids.push(domain);
        c.watts.push(p.watts);
        c.volts.push(p.volts.unwrap_or(0.0));
        c.amps.push(p.amps.unwrap_or(0.0));
        c.temp_c.push(p.temp_c.unwrap_or(0.0));
        c.flags.push(flags);
    }

    /// Append a stale copy of record `i` stamped at `timestamp` — the
    /// last-good-value substitution of the fault layer, with no label or
    /// record allocation at all.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn push_stale_copy(&mut self, i: usize, timestamp: SimTime) {
        // An empty arena has no record `i`; inserting the empty block lets
        // the index below raise the same out-of-range panic as before.
        let c = self.cols.get_or_insert_with(Default::default);
        c.timestamps.push(timestamp);
        c.device_ids.push(c.device_ids[i]);
        c.domain_ids.push(c.domain_ids[i]);
        c.watts.push(c.watts[i]);
        c.volts.push(c.volts[i]);
        c.amps.push(c.amps[i]);
        c.temp_c.push(c.temp_c[i]);
        c.flags.push(c.flags[i] | STALE);
    }

    /// The record at index `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<DataPointRef<'_>> {
        let c = self.cols.as_deref()?;
        if i >= c.timestamps.len() {
            return None;
        }
        let flags = c.flags[i];
        Some(DataPointRef {
            timestamp: c.timestamps[i],
            device: &c.devices[c.device_ids[i] as usize],
            domain: &c.domains[c.domain_ids[i] as usize],
            watts: c.watts[i],
            volts: (flags & HAS_VOLTS != 0).then(|| c.volts[i]),
            amps: (flags & HAS_AMPS != 0).then(|| c.amps[i]),
            temp_c: (flags & HAS_TEMP != 0).then(|| c.temp_c[i]),
            stale: flags & STALE != 0,
        })
    }

    /// The first record, when any.
    pub fn first(&self) -> Option<DataPointRef<'_>> {
        self.get(0)
    }

    /// The last record, when any.
    pub fn last(&self) -> Option<DataPointRef<'_>> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterate the records zero-copy.
    pub fn iter(&self) -> RecordsIter<'_> {
        RecordsIter {
            records: self,
            next: 0,
        }
    }

    /// Materialize the whole arena as owned [`DataPoint`]s (tests and
    /// call sites that mutate records in place).
    pub fn to_vec(&self) -> Vec<DataPoint> {
        self.iter().map(|p| p.to_point()).collect()
    }
}

impl From<Vec<DataPoint>> for Records {
    fn from(points: Vec<DataPoint>) -> Self {
        let mut r = Records::new();
        for p in points {
            r.push(p);
        }
        r
    }
}

impl FromIterator<DataPoint> for Records {
    fn from_iter<I: IntoIterator<Item = DataPoint>>(iter: I) -> Self {
        let mut r = Records::new();
        for p in iter {
            r.push(p);
        }
        r
    }
}

/// Zero-copy iterator over a [`Records`] arena.
#[derive(Clone, Debug)]
pub struct RecordsIter<'a> {
    records: &'a Records,
    next: usize,
}

impl<'a> Iterator for RecordsIter<'a> {
    type Item = DataPointRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let p = self.records.get(self.next)?;
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.records.len().saturating_sub(self.next);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RecordsIter<'_> {}

impl<'a> IntoIterator for &'a Records {
    type Item = DataPointRef<'a>;
    type IntoIter = RecordsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<DataPoint> {
        vec![
            DataPoint {
                timestamp: SimTime::from_millis(560),
                device: "nodecard".into(),
                domain: "Chip Core".into(),
                watts: 700.25,
                volts: Some(0.9),
                amps: Some(778.06),
                temp_c: None,
                stale: false,
            },
            DataPoint::power(SimTime::from_millis(560), "nodecard", "DRAM", 237.0),
            DataPoint {
                stale: true,
                ..DataPoint::power(SimTime::from_millis(1120), "nodecard", "Chip Core", 699.0)
            },
        ]
    }

    #[test]
    fn roundtrips_through_columns() {
        let points = sample();
        let r: Records = points.clone().into();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.to_vec(), points);
        // Views agree field-by-field with the owned records.
        for (view, p) in r.iter().zip(&points) {
            assert_eq!(view.timestamp, p.timestamp);
            assert_eq!(view.device, p.device);
            assert_eq!(view.domain, p.domain);
            assert_eq!(view.watts, p.watts);
            assert_eq!(view.volts, p.volts);
            assert_eq!(view.amps, p.amps);
            assert_eq!(view.temp_c, p.temp_c);
            assert_eq!(view.stale, p.stale);
        }
        assert_eq!(r.first().map(|p| p.watts), Some(700.25));
        assert_eq!(r.last().map(|p| p.stale), Some(true));
        assert!(r.get(3).is_none());
    }

    #[test]
    fn labels_are_interned_once() {
        let r: Records = sample().into();
        let c = r.cols.as_deref().expect("non-empty");
        assert_eq!(c.devices, vec!["nodecard"]);
        assert_eq!(c.domains, vec!["Chip Core", "DRAM"]);
    }

    #[test]
    fn equality_is_order_of_first_appearance() {
        // Same logical records always produce the same tables, whether
        // built by push, collect, or a render/parse round trip.
        let a: Records = sample().into();
        let b: Records = sample().into_iter().collect();
        assert_eq!(a, b);
        let c: Records = a.to_vec().into();
        assert_eq!(a, c);
    }

    #[test]
    fn stale_copy_duplicates_row_with_marker() {
        let mut r: Records = sample().into();
        r.push_stale_copy(1, SimTime::from_millis(1680));
        let copy = r.last().expect("pushed");
        assert_eq!(copy.timestamp, SimTime::from_millis(1680));
        assert_eq!(copy.device, "nodecard");
        assert_eq!(copy.domain, "DRAM");
        assert_eq!(copy.watts, 237.0);
        assert_eq!(copy.volts, None);
        assert!(copy.stale);
        // The source row is untouched.
        assert!(!r.get(1).expect("source").stale);
    }

    #[test]
    fn absent_channels_stay_absent_through_stale_copies() {
        let mut r = Records::new();
        r.push(DataPoint {
            volts: Some(0.0), // present-but-zero must stay Some
            ..DataPoint::power(SimTime::ZERO, "pkg", "pkg", 10.0)
        });
        r.push_stale_copy(0, SimTime::from_secs(1));
        let copy = r.last().expect("pushed");
        assert_eq!(copy.volts, Some(0.0));
        assert_eq!(copy.amps, None);
    }
}
