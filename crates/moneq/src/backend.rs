//! The backend abstraction.
//!
//! "Since the interface for MonEQ was already well defined from our
//! experiences with BG/Q, we kept that the same while adding the necessary
//! functionality for other pieces of hardware internally" (§III). The
//! [`EnvBackend`] trait is that internal seam: one implementation per
//! vendor mechanism, each declaring its minimum reliable polling interval,
//! its per-poll virtual-time cost (the paper's measured per-query numbers),
//! and its Table I capability column.

use crate::reading::DataPoint;
use powermodel::{Metric, Platform, Support};
use simkit::{SimDuration, SimTime};

/// A mechanism limitation, stated by the backend itself.
///
/// §IV's first "looking forward" request: "the first and perhaps most
/// important is **stated limitations** of the data and the collection of
/// this data. For many of the devices discussed, the limitations in
/// collection had to be deduced from careful experimentation." Here every
/// backend declares its own limitations programmatically, so no user has to
/// rediscover the 14.2 ms in-band cost or the >60 s overflow the hard way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatedLimitation {
    /// The affected aspect (`"granularity"`, `"staleness"`, `"overflow"`,
    /// `"accuracy"`, `"cost"`, `"access"`, `"perturbation"`, `"scope"`).
    pub aspect: &'static str,
    /// Human-readable statement of the limitation.
    pub statement: String,
}

impl StatedLimitation {
    /// Convenience constructor.
    pub fn new(aspect: &'static str, statement: impl Into<String>) -> Self {
        StatedLimitation {
            aspect,
            statement: statement.into(),
        }
    }
}

/// One vendor environmental-data mechanism.
///
/// `Send` is a supertrait so that whole sessions can be moved onto worker
/// threads: [`crate::ClusterRun`] drives one `MonEq` per simulated rank and
/// fans them out across a pool for Mira-scale sweeps.
pub trait EnvBackend: Send {
    /// Short backend name (appears in output-file headers).
    fn name(&self) -> &'static str;

    /// The platform of Table I this backend belongs to.
    fn platform(&self) -> Platform;

    /// The lowest polling interval at which the mechanism yields reliable
    /// data (560 ms for EMON, ~60 ms for RAPL/NVML, 50 ms on the Phi).
    fn min_interval(&self) -> SimDuration;

    /// Virtual-time cost charged to the application per poll (all the
    /// queries one poll makes).
    fn poll_cost(&self) -> SimDuration;

    /// The backend's Table I column.
    fn capabilities(&self) -> Vec<(Metric, Support)>;

    /// Collect the latest generation of data at time `t`.
    ///
    /// `t` is the instant the SIGALRM fired; implementations must return
    /// whatever generation their mechanism would serve at that instant
    /// (stale EMON generations, RAPL counter deltas since the previous
    /// poll, …).
    fn poll(&mut self, t: SimTime) -> Vec<DataPoint>;

    /// Upper bound on records per poll (used to size the preallocated
    /// array).
    fn records_per_poll(&self) -> usize;

    /// The mechanism's stated limitations (§IV's "looking forward" ask).
    /// Backends override this; an empty default keeps third-party backends
    /// compiling.
    fn limitations(&self) -> Vec<StatedLimitation> {
        Vec::new()
    }
}

/// Validate a user-requested interval against a backend.
///
/// §III: "users have the ability to set this interval to whatever valid
/// value is desired" — valid meaning at or above the hardware minimum.
pub fn validate_interval(
    backend: &dyn EnvBackend,
    interval: SimDuration,
) -> Result<SimDuration, String> {
    if interval < backend.min_interval() {
        Err(format!(
            "interval {interval} below {}'s minimum {}",
            backend.name(),
            backend.min_interval()
        ))
    } else {
        Ok(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl EnvBackend for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(60)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(30)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn poll(&mut self, t: SimTime) -> Vec<DataPoint> {
            vec![DataPoint::power(t, "x", "y", 1.0)]
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    #[test]
    fn interval_validation() {
        let d = Dummy;
        assert!(validate_interval(&d, SimDuration::from_millis(59)).is_err());
        assert_eq!(
            validate_interval(&d, SimDuration::from_millis(60)).unwrap(),
            SimDuration::from_millis(60)
        );
        assert!(validate_interval(&d, SimDuration::from_secs(1)).is_ok());
    }
}
