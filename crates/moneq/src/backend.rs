//! The backend abstraction.
//!
//! "Since the interface for MonEQ was already well defined from our
//! experiences with BG/Q, we kept that the same while adding the necessary
//! functionality for other pieces of hardware internally" (§III). The
//! [`EnvBackend`] trait is that internal seam: one implementation per
//! vendor mechanism, each declaring its minimum reliable polling interval,
//! its per-poll virtual-time cost (the paper's measured per-query numbers),
//! and its Table I capability column.

use crate::reading::DataPoint;
use powermodel::{Metric, Platform, Support};
use simkit::fault::{FaultOutcome, FaultPlan, FaultProcess, FaultSpec};
use simkit::{SimDuration, SimTime};

/// Why a read attempt failed.
///
/// The variants mirror the mechanisms' real failure modes (DESIGN.md §8):
/// retryable faults ([`ReadError::is_retryable`]) may clear on an immediate
/// retry inside the same poll; the rest are lost causes until the next
/// poll, so the session degrades instead of retrying.
#[derive(Clone, Debug, PartialEq)]
pub enum ReadError {
    /// The query failed transiently (an `EIO` MSR read, a PCIe hiccup);
    /// an immediate retry may succeed.
    Transient(String),
    /// The mechanism stalled for `stalled` of virtual time and then gave
    /// up (an unresponsive MICRAS daemon). The session charges the stall
    /// (capped by its per-backend timeout) to fault recovery.
    Timeout {
        /// How long the mechanism hung before failing.
        stalled: SimDuration,
    },
    /// The mechanism answered but has no fresh generation to serve (a
    /// BG/Q envdb row not yet committed). Retrying within the poll cannot
    /// help — the generation will not appear any sooner.
    NoData,
    /// The mechanism is unavailable for the surrounding window (an NVML
    /// sampling blackout). Not retryable.
    Unavailable(String),
}

impl ReadError {
    /// May an immediate retry inside the same poll succeed?
    pub fn is_retryable(&self) -> bool {
        matches!(self, ReadError::Transient(_) | ReadError::Timeout { .. })
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Transient(m) => write!(f, "transient read error: {m}"),
            ReadError::Timeout { stalled } => write!(f, "read timed out after {stalled}"),
            ReadError::NoData => write!(f, "no fresh generation available"),
            ReadError::Unavailable(m) => write!(f, "mechanism unavailable: {m}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A successful poll's yield.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Poll {
    /// The records the mechanism served (possibly flagged stale).
    pub points: Vec<DataPoint>,
    /// Records the mechanism should have served but silently lost (missing
    /// environmental-database rows). Counted as lost in the completeness
    /// report.
    pub missing: u32,
}

impl Poll {
    /// A fault-free poll serving `points`.
    pub fn complete(points: Vec<DataPoint>) -> Self {
        Poll { points, missing: 0 }
    }

    /// A poll with `missing` silently lost records.
    pub fn with_missing(points: Vec<DataPoint>, missing: u32) -> Self {
        Poll { points, missing }
    }
}

/// How a session reacts to read failures (DESIGN.md §8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retry attempts after the first failure (retryable errors only).
    pub max_retries: u32,
    /// Backoff before retry `n` (1-based) is `base_backoff << (n-1)`:
    /// exponential, charged to fault recovery on the virtual timeline.
    pub base_backoff: SimDuration,
    /// Per-backend cap on how long one stalled read may charge; a
    /// mechanism that hangs longer is abandoned at this bound.
    pub timeout: SimDuration,
    /// Consecutive failed polls after which the device is disabled for the
    /// rest of the run (its polls then count as missed).
    pub disable_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimDuration::from_millis(1),
            timeout: SimDuration::from_millis(50),
            disable_after: 8,
        }
    }
}

/// Per-fault-kind decision counters kept by an active [`FaultGate`].
///
/// Every [`FaultGate::admit`] / [`FaultGate::filter`] decision is tallied
/// here, so a session's telemetry can report exactly how often each
/// documented pathology fired per mechanism. Draws are indexed by virtual
/// time, so these counts are deterministic and identical serial vs.
/// parallel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Attempts admitted cleanly.
    pub admitted: u64,
    /// Attempts admitted with a value glitch (stale-flagged sample).
    pub glitches: u64,
    /// Attempts failed with a transient error.
    pub transient: u64,
    /// Attempts failed with a timeout stall.
    pub timeout: u64,
    /// Attempts failed with no fresh generation to serve.
    pub no_data: u64,
    /// Attempts failed inside an unavailability blackout.
    pub blackout: u64,
    /// Records silently dropped by per-record drop faults.
    pub dropped_records: u64,
}

impl GateStats {
    /// `true` when the gate never decided anything.
    pub fn is_empty(&self) -> bool {
        *self == GateStats::default()
    }

    /// The counters as `(kind, count)` pairs, for folding into telemetry.
    pub fn kinds(&self) -> [(&'static str, u64); 7] {
        [
            ("admitted", self.admitted),
            ("glitch", self.glitches),
            ("transient", self.transient),
            ("timeout", self.timeout),
            ("no_data", self.no_data),
            ("blackout", self.blackout),
            ("dropped_record", self.dropped_records),
        ]
    }
}

/// Per-device fault admission, shared by every backend adapter.
///
/// A backend holds one gate per device; `read` asks the gate to
/// [`admit`](FaultGate::admit) each attempt, and the gate translates the
/// [`FaultProcess`] outcome into a typed [`ReadError`] (or a glitch grant).
/// An inactive gate ([`FaultGate::none`]) admits everything at zero cost,
/// so un-faulted runs stay byte-identical to pre-fault behavior. Active
/// gates tally every decision into a [`GateStats`].
#[derive(Clone, Debug, Default)]
pub struct FaultGate {
    process: Option<FaultProcess>,
    /// Last admitted instant and its attempt count, used to infer the
    /// attempt index when a session retries at the same poll instant.
    last: Option<(SimTime, u32)>,
    stats: GateStats,
}

/// An admitted read attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// The mechanism will serve a value-corrupted sample this attempt;
    /// the backend decides what the corruption looks like and flags the
    /// records stale.
    pub glitch: bool,
}

impl FaultGate {
    /// A gate that admits everything (the `FaultPlan::none()` fast path).
    pub fn none() -> Self {
        FaultGate::default()
    }

    /// Build the gate for device `label` from the run's plan and the
    /// mechanism's own pathology profile.
    pub fn from_plan(plan: &FaultPlan, label: &str, profile: FaultSpec) -> Self {
        FaultGate {
            process: plan.process_for(label, profile),
            last: None,
            stats: GateStats::default(),
        }
    }

    /// Does this gate ever inject anything?
    pub fn is_active(&self) -> bool {
        self.process.is_some()
    }

    /// The gate's per-fault-kind decision counters so far. All zero for an
    /// inactive gate.
    pub fn stats(&self) -> GateStats {
        self.stats
    }

    /// Admit or fail one read attempt at `t`. Consecutive calls at the
    /// same `t` are treated as retries (attempt 1, 2, …) and redraw.
    pub fn admit(&mut self, t: SimTime) -> Result<Grant, ReadError> {
        let Some(process) = &self.process else {
            return Ok(Grant { glitch: false });
        };
        let attempt = match self.last {
            Some((last_t, a)) if last_t == t => a + 1,
            _ => 0,
        };
        self.last = Some((t, attempt));
        match process.outcome(t, attempt) {
            FaultOutcome::Ok => {
                self.stats.admitted += 1;
                Ok(Grant { glitch: false })
            }
            FaultOutcome::Glitch => {
                self.stats.glitches += 1;
                Ok(Grant { glitch: true })
            }
            FaultOutcome::Transient => {
                self.stats.transient += 1;
                Err(ReadError::Transient("injected transient fault".into()))
            }
            FaultOutcome::Timeout(stalled) => {
                self.stats.timeout += 1;
                Err(ReadError::Timeout { stalled })
            }
            FaultOutcome::NoData => {
                self.stats.no_data += 1;
                Err(ReadError::NoData)
            }
            FaultOutcome::Blackout => {
                self.stats.blackout += 1;
                Err(ReadError::Unavailable("sampling blackout".into()))
            }
        }
    }

    /// Apply per-record drop faults to an admitted poll's records: returns
    /// the surviving records and the number silently lost.
    pub fn filter(&mut self, t: SimTime, points: Vec<DataPoint>) -> (Vec<DataPoint>, u32) {
        let Some(process) = &self.process else {
            return (points, 0);
        };
        let mut missing = 0u32;
        let kept = points
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| {
                if process.drop_record(t, i) {
                    missing += 1;
                    None
                } else {
                    Some(p)
                }
            })
            .collect();
        self.stats.dropped_records += u64::from(missing);
        (kept, missing)
    }
}

/// A mechanism limitation, stated by the backend itself.
///
/// §IV's first "looking forward" request: "the first and perhaps most
/// important is **stated limitations** of the data and the collection of
/// this data. For many of the devices discussed, the limitations in
/// collection had to be deduced from careful experimentation." Here every
/// backend declares its own limitations programmatically, so no user has to
/// rediscover the 14.2 ms in-band cost or the >60 s overflow the hard way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatedLimitation {
    /// The affected aspect (`"granularity"`, `"staleness"`, `"overflow"`,
    /// `"accuracy"`, `"cost"`, `"access"`, `"perturbation"`, `"scope"`).
    pub aspect: &'static str,
    /// Human-readable statement of the limitation.
    pub statement: String,
}

impl StatedLimitation {
    /// Convenience constructor.
    pub fn new(aspect: &'static str, statement: impl Into<String>) -> Self {
        StatedLimitation {
            aspect,
            statement: statement.into(),
        }
    }
}

/// One vendor environmental-data mechanism.
///
/// `Send` is a supertrait so that whole sessions can be moved onto worker
/// threads: [`crate::ClusterRun`] drives one `MonEq` per simulated rank and
/// fans them out across a pool for Mira-scale sweeps.
pub trait EnvBackend: Send {
    /// Short backend name (appears in output-file headers).
    fn name(&self) -> &'static str;

    /// The platform of Table I this backend belongs to.
    fn platform(&self) -> Platform;

    /// The lowest polling interval at which the mechanism yields reliable
    /// data (560 ms for EMON, ~60 ms for RAPL/NVML, 50 ms on the Phi).
    fn min_interval(&self) -> SimDuration;

    /// Virtual-time cost charged to the application per poll (all the
    /// queries one poll makes).
    fn poll_cost(&self) -> SimDuration;

    /// The backend's Table I column.
    fn capabilities(&self) -> Vec<(Metric, Support)>;

    /// Collect the latest generation of data at time `t`.
    ///
    /// `t` is the instant the SIGALRM fired; implementations must return
    /// whatever generation their mechanism would serve at that instant
    /// (stale EMON generations, RAPL counter deltas since the previous
    /// poll, …) — or a typed [`ReadError`] describing why the mechanism
    /// failed to serve. Sessions retry retryable errors with bounded
    /// exponential backoff and degrade gracefully on the rest.
    ///
    /// Calling `read` again with the same `t` is a retry of the same poll;
    /// fault-injected backends redraw their fault process per attempt.
    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError>;

    /// Infallible convenience wrapper over [`EnvBackend::read`]: returns
    /// the served records, or nothing on any failure. Figure and benchmark
    /// code that predates the fault layer polls through this.
    fn poll(&mut self, t: SimTime) -> Vec<DataPoint> {
        self.read(t).map(|p| p.points).unwrap_or_default()
    }

    /// The mechanism's *update grid*: the cadence on which the hardware
    /// regenerates the values a read observes (560 ms EMON generations,
    /// ~60 ms NVML register refresh, the RAPL counters' ~1 ms tick, the
    /// SMC's 50 ms sampling window). Two reads inside one grid period can
    /// only observe the same generation, which is what makes shared-read
    /// caching sound; [`simkit::CadenceCache`] keys on this grid.
    ///
    /// Defaults to [`EnvBackend::min_interval`] (a reliable, conservative
    /// grid); each adapter overrides it with the mechanism's actual
    /// cadence.
    fn read_cadence(&self) -> SimDuration {
        self.min_interval()
    }

    /// May a stored poll result for the *same instant* be served again in
    /// place of a live [`EnvBackend::read`], with byte-identical effect?
    ///
    /// `true` only when the backend's served values are a pure function
    /// of the query instant (no polling-history state like RAPL's
    /// previous-snapshot delta or NVML's sample-ring drain cursor) *and*
    /// no fault gate is active (fault draws are per-attempt state). When
    /// `false`, a cache hit still shares the access-path *cost*, but the
    /// value is recomputed locally — deterministically identical, since
    /// every mechanism model is a deterministic function of grid time.
    fn replayable(&self) -> bool {
        false
    }

    /// Batched collection: one access-path round-trip serving `agents`
    /// co-resident consumers of the same device. Returns one [`Poll`] per
    /// consumer — clones of a single live read, which is exact because
    /// co-resident consumers of one mechanism can only observe the same
    /// generation. Charge [`EnvBackend::batched_cost`] for the whole
    /// batch instead of `agents` individual [`EnvBackend::poll_cost`]s.
    fn read_many(&mut self, t: SimTime, agents: usize) -> Result<Vec<Poll>, ReadError> {
        if agents == 0 {
            return Ok(Vec::new());
        }
        let first = self.read(t)?;
        Ok(vec![first; agents])
    }

    /// Virtual-time cost of one batched [`EnvBackend::read_many`] serving
    /// `agents` consumers: the access path is crossed once, so the
    /// default is a single [`EnvBackend::poll_cost`] regardless of batch
    /// width — the amortisation the real MonEQ gets from per-node-card
    /// collection.
    fn batched_cost(&self, agents: usize) -> SimDuration {
        let _ = agents;
        self.poll_cost()
    }

    /// Upper bound on records per poll (used to size the preallocated
    /// array).
    fn records_per_poll(&self) -> usize;

    /// The mechanism's stated limitations (§IV's "looking forward" ask).
    /// Backends override this; an empty default keeps third-party backends
    /// compiling.
    fn limitations(&self) -> Vec<StatedLimitation> {
        Vec::new()
    }

    /// This backend's [`FaultGate`] decision counters, when it routes reads
    /// through one. `None` (the default) means the backend has no gate;
    /// sessions then record no per-fault-kind telemetry for it.
    fn gate_stats(&self) -> Option<GateStats> {
        None
    }

    /// The access-path cost actually incurred by the most recent poll at
    /// one instant. Sessions charge this (once per poll, after the read
    /// outcome settles) instead of the static [`EnvBackend::poll_cost`].
    ///
    /// For local mechanisms the two are identical — the cost of crossing
    /// the access path is a fixed property of the mechanism — so the
    /// default just forwards. A [`crate::remote::RemoteBackend`] overrides
    /// it with the measured wire round-trip, which over an ideal link
    /// collapses back to `poll_cost` exactly (the byte-identity invariant).
    fn last_poll_cost(&self) -> SimDuration {
        self.poll_cost()
    }

    /// The transfer ledger of the link this backend is served over, when
    /// it is deployed remotely. `None` (the default) means in-band: no
    /// wire, no wire telemetry.
    fn wire_stats(&self) -> Option<simkit::wire::LinkStats> {
        None
    }
}

/// Validate a user-requested interval against a backend.
///
/// §III: "users have the ability to set this interval to whatever valid
/// value is desired" — valid meaning at or above the hardware minimum.
pub fn validate_interval(
    backend: &dyn EnvBackend,
    interval: SimDuration,
) -> Result<SimDuration, String> {
    if interval < backend.min_interval() {
        Err(format!(
            "interval {interval} below {}'s minimum {}",
            backend.name(),
            backend.min_interval()
        ))
    } else {
        Ok(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl EnvBackend for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(60)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(30)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
            Ok(Poll::complete(vec![DataPoint::power(t, "x", "y", 1.0)]))
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    #[test]
    fn provided_poll_discards_errors() {
        struct Failing;
        impl EnvBackend for Failing {
            fn name(&self) -> &'static str {
                "failing"
            }
            fn platform(&self) -> Platform {
                Platform::Rapl
            }
            fn min_interval(&self) -> SimDuration {
                SimDuration::from_millis(60)
            }
            fn poll_cost(&self) -> SimDuration {
                SimDuration::ZERO
            }
            fn capabilities(&self) -> Vec<(Metric, Support)> {
                vec![]
            }
            fn read(&mut self, _t: SimTime) -> Result<Poll, ReadError> {
                Err(ReadError::NoData)
            }
            fn records_per_poll(&self) -> usize {
                1
            }
        }
        assert!(Failing.poll(SimTime::ZERO).is_empty());
    }

    #[test]
    fn gate_infers_attempts_from_repeated_instant() {
        let plan = FaultPlan::uniform(11, 0.2);
        let mut gate = FaultGate::from_plan(&plan, "dev", FaultSpec::zero());
        assert!(gate.is_active());
        // Find an instant whose first attempt fails but a retry clears.
        let mut recovered = false;
        for k in 1..400u64 {
            let t = SimTime::from_millis(k * 60);
            if gate.admit(t).is_err() && gate.admit(t).is_ok() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "retries never redraw through the gate");
    }

    #[test]
    fn inactive_gate_admits_everything() {
        let mut gate = FaultGate::none();
        assert!(!gate.is_active());
        for k in 0..100u64 {
            assert_eq!(
                gate.admit(SimTime::from_millis(k)),
                Ok(Grant { glitch: false })
            );
        }
        let pts = vec![DataPoint::power(SimTime::ZERO, "d", "x", 1.0)];
        let (kept, missing) = gate.filter(SimTime::ZERO, pts.clone());
        assert_eq!(kept, pts);
        assert_eq!(missing, 0);
    }

    #[test]
    fn gate_filter_drops_records_deterministically() {
        let spec = FaultSpec {
            drop_record: 0.3,
            ..FaultSpec::zero()
        };
        let plan = FaultPlan::Uniform { seed: 5, spec };
        let mut gate = FaultGate::from_plan(&plan, "dev", FaultSpec::zero());
        let t = SimTime::from_secs(1);
        let pts: Vec<DataPoint> = (0..64)
            .map(|i| DataPoint::power(t, &format!("d{i}"), "x", 1.0))
            .collect();
        let (kept_a, missing_a) = gate.filter(t, pts.clone());
        let (kept_b, missing_b) = gate.filter(t, pts.clone());
        assert_eq!(kept_a, kept_b);
        assert_eq!(missing_a, missing_b);
        assert!(missing_a > 0, "0.3 drop rate over 64 records lost nothing");
        assert_eq!(kept_a.len() + missing_a as usize, pts.len());
    }

    #[test]
    fn active_gate_tallies_every_decision() {
        let plan = FaultPlan::uniform(11, 0.2);
        let mut gate = FaultGate::from_plan(&plan, "dev", FaultSpec::zero());
        for k in 0..200u64 {
            let _ = gate.admit(SimTime::from_millis(k * 60));
        }
        let s = gate.stats();
        assert_eq!(
            s.admitted + s.glitches + s.transient + s.timeout + s.no_data + s.blackout,
            200,
            "every admit decision lands in exactly one bucket"
        );
        assert!(!s.is_empty());
        assert!(FaultGate::none().stats().is_empty());
    }

    #[test]
    fn interval_validation() {
        let d = Dummy;
        assert!(validate_interval(&d, SimDuration::from_millis(59)).is_err());
        assert_eq!(
            validate_interval(&d, SimDuration::from_millis(60)).unwrap(),
            SimDuration::from_millis(60)
        );
        assert!(validate_interval(&d, SimDuration::from_secs(1)).is_ok());
    }
}
