//! MonEQ output files.
//!
//! One file per node (agent rank), written at finalize. The format is
//! line-oriented text: a commented header, one record per collected data
//! point, and the tag markers injected after the run ("the injection
//! happens after the program has completed", §III). A parser is provided
//! for post-processing — the same workflow as real MonEQ's analysis
//! scripts.

use crate::completeness::Completeness;
use crate::reading::DataPoint;
use crate::records::Records;
use crate::tags::{TagEvent, TagKind};
use simkit::SimTime;
use std::fmt::Write as _;

/// Format version tag.
pub const FORMAT_VERSION: &str = "moneq-output-v1";

/// A parsed (or to-be-written) output file.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputFile {
    /// Agent rank that produced the file.
    pub rank: u32,
    /// Agent location / node name.
    pub agent: String,
    /// Backends that contributed (comma-joined in the header).
    pub backends: Vec<String>,
    /// Polling interval in nanoseconds.
    pub interval_ns: u64,
    /// The collected records, stored columnar ([`Records`]); iterate with
    /// `&file.points` for zero-copy [`crate::DataPointRef`] views.
    pub points: Records,
    /// Tag markers.
    pub tags: Vec<TagEvent>,
    /// Per-device completeness counters (`CMP` lines). Empty for a clean
    /// run — the file then renders byte-identically to the pre-fault
    /// format; any degraded device puts every device's counters here.
    pub completeness: Vec<Completeness>,
}

/// Parse failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Failures loading an output file from disk: either the I/O itself or the
/// parse of what was read. Typed (rather than stringly) so callers can
/// distinguish a missing file from a corrupt one.
#[derive(Debug)]
pub enum OutputError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file's contents did not parse.
    Parse(ParseError),
}

impl std::fmt::Display for OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputError::Io(e) => write!(f, "reading output file: {e}"),
            OutputError::Parse(e) => write!(f, "parsing output file: {e}"),
        }
    }
}

impl std::error::Error for OutputError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OutputError::Io(e) => Some(e),
            OutputError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for OutputError {
    fn from(e: std::io::Error) -> Self {
        OutputError::Io(e)
    }
}

impl From<ParseError> for OutputError {
    fn from(e: ParseError) -> Self {
        OutputError::Parse(e)
    }
}

// Values render through f64's shortest-round-trip `Display`, so
// `parse(render(f)) == f` exactly — no `{:.6}` truncation. A lone `-` still
// means "absent": `Display` never renders a bare minus, so it stays
// unambiguous.
fn opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "-".to_owned(),
    }
}

fn parse_opt(s: &str) -> Result<Option<f64>, String> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse::<f64>().map(Some).map_err(|e| e.to_string())
    }
}

/// Escape a label for the tab-separated format: backslash, tab, newline,
/// carriage return, and comma (the backends-header separator) get
/// backslash sequences. Device, domain, tag, agent, and backend names all
/// pass through this, so hostile names can never corrupt framing.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ',' => out.push_str("\\c"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; rejects unknown or dangling escapes.
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('c') => out.push(','),
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("dangling escape at end of field".to_owned()),
        }
    }
    Ok(out)
}

impl OutputFile {
    /// The conventional file name for this agent's output.
    ///
    /// The agent component is sanitized to `[A-Za-z0-9._-]` (anything else
    /// becomes `_`), so separators, control characters, or `/` in an agent
    /// name cannot produce a hostile path. The `# agent:` header keeps the
    /// exact name.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .agent
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("moneq-rank{:05}-{}.dat", self.rank, safe)
    }

    /// Write to `dir` using [`OutputFile::file_name`]; returns the path.
    /// This is the finalize-time disk write of §III ("actually writing the
    /// collected data to disk").
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Load and parse a file written by [`OutputFile::write_to`].
    pub fn from_path(path: &std::path::Path) -> Result<Self, OutputError> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::parse(&text)?)
    }

    /// Render to the on-disk text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {FORMAT_VERSION}");
        let _ = writeln!(out, "# rank: {}", self.rank);
        let _ = writeln!(out, "# agent: {}", escape(&self.agent));
        let _ = writeln!(
            out,
            "# backends: {}",
            self.backends
                .iter()
                .map(|b| escape(b))
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = writeln!(out, "# interval_ns: {}", self.interval_ns);
        for p in &self.points {
            let _ = write!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                p.timestamp.as_nanos(),
                escape(p.device),
                escape(p.domain),
                p.watts,
                opt(p.volts),
                opt(p.amps),
                opt(p.temp_c),
            );
            // The stale marker is an 8th field present only when set, so
            // fresh records render exactly as they did before the fault
            // layer existed.
            if p.stale {
                out.push_str("\tS");
            }
            out.push('\n');
        }
        for t in &self.tags {
            let _ = writeln!(
                out,
                "TAG\t{}\t{}\t{}",
                escape(&t.label),
                t.kind.marker(),
                t.at.as_nanos()
            );
        }
        for c in &self.completeness {
            let _ = write!(
                out,
                "CMP\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                escape(&c.device),
                c.scheduled,
                c.succeeded,
                c.retried,
                c.stale_polls,
                c.missed_polls,
                c.records_fresh,
                c.records_stale,
                c.records_lost,
                match c.disabled_at_ns {
                    Some(ns) => ns.to_string(),
                    None => "-".to_owned(),
                },
            );
            // Disabling ranks are a 12th field present only when some rank
            // disabled the device, so pre-existing CMP lines (and their
            // byte-exact round-trips) are unchanged.
            if !c.disabled_ranks.is_empty() {
                let ranks: Vec<String> = c.disabled_ranks.iter().map(u32::to_string).collect();
                let _ = write!(out, "\t{}", ranks.join(","));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the on-disk text format.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let err = |line: usize, message: &str| ParseError {
            line,
            message: message.to_owned(),
        };
        let mut lines = text.lines().enumerate();
        let (n0, first) = lines.next().ok_or_else(|| err(1, "empty file"))?;
        if first.trim() != format!("# {FORMAT_VERSION}") {
            return Err(err(n0 + 1, "missing or wrong format header"));
        }
        let mut rank = None;
        let mut agent = None;
        let mut backends = None;
        let mut interval_ns = None;
        let mut points = Records::new();
        let mut tags = Vec::new();
        let mut completeness = Vec::new();
        for (i, line) in lines {
            let ln = i + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                if let Some(v) = rest.strip_prefix("rank: ") {
                    rank = Some(v.parse().map_err(|_| err(ln, "bad rank"))?);
                } else if let Some(v) = rest.strip_prefix("agent: ") {
                    agent = Some(unescape(v).map_err(|m| err(ln, &m))?);
                } else if let Some(v) = rest.strip_prefix("backends: ") {
                    backends = Some(
                        v.split(',')
                            .map(|b| unescape(b).map_err(|m| err(ln, &m)))
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                } else if let Some(v) = rest.strip_prefix("interval_ns: ") {
                    interval_ns = Some(v.parse().map_err(|_| err(ln, "bad interval"))?);
                }
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields[0] == "TAG" {
                if fields.len() != 4 {
                    return Err(err(ln, "TAG line needs 4 fields"));
                }
                let kind = match fields[2] {
                    "START" => TagKind::Start,
                    "END" => TagKind::End,
                    _ => return Err(err(ln, "TAG kind must be START or END")),
                };
                tags.push(TagEvent {
                    label: unescape(fields[1]).map_err(|m| err(ln, &m))?,
                    kind,
                    at: SimTime::from_nanos(
                        fields[3]
                            .parse()
                            .map_err(|_| err(ln, "bad tag timestamp"))?,
                    ),
                });
                continue;
            }
            if fields[0] == "CMP" {
                if fields.len() != 11 && fields.len() != 12 {
                    return Err(err(ln, "CMP line needs 11 or 12 fields"));
                }
                let count = |s: &str, what: &str| -> Result<u64, ParseError> {
                    s.parse().map_err(|_| err(ln, &format!("bad {what}")))
                };
                let disabled_ranks = match fields.get(11) {
                    None => Vec::new(),
                    Some(list) => list
                        .split(',')
                        .map(|r| r.parse::<u32>().map_err(|_| err(ln, "bad disabled rank")))
                        .collect::<Result<Vec<_>, _>>()?,
                };
                completeness.push(Completeness {
                    disabled_ranks,
                    device: unescape(fields[1]).map_err(|m| err(ln, &m))?.into(),
                    scheduled: count(fields[2], "scheduled count")?,
                    succeeded: count(fields[3], "succeeded count")?,
                    retried: count(fields[4], "retried count")?,
                    stale_polls: count(fields[5], "stale-poll count")?,
                    missed_polls: count(fields[6], "missed-poll count")?,
                    records_fresh: count(fields[7], "fresh-record count")?,
                    records_stale: count(fields[8], "stale-record count")?,
                    records_lost: count(fields[9], "lost-record count")?,
                    disabled_at_ns: if fields[10] == "-" {
                        None
                    } else {
                        Some(count(fields[10], "disable timestamp")?)
                    },
                });
                continue;
            }
            // 7 fields for a fresh record, 8 when the stale marker is set.
            let stale = match fields.len() {
                7 => false,
                8 if fields[7] == "S" => true,
                8 => return Err(err(ln, "8th record field must be the stale marker S")),
                _ => return Err(err(ln, "record needs 7 or 8 fields")),
            };
            points.push(DataPoint {
                timestamp: SimTime::from_nanos(
                    fields[0].parse().map_err(|_| err(ln, "bad timestamp"))?,
                ),
                device: unescape(fields[1]).map_err(|m| err(ln, &m))?,
                domain: unescape(fields[2]).map_err(|m| err(ln, &m))?,
                watts: fields[3].parse().map_err(|_| err(ln, "bad watts"))?,
                volts: parse_opt(fields[4]).map_err(|m| err(ln, &m))?,
                amps: parse_opt(fields[5]).map_err(|m| err(ln, &m))?,
                temp_c: parse_opt(fields[6]).map_err(|m| err(ln, &m))?,
                stale,
            });
        }
        Ok(OutputFile {
            rank: rank.ok_or_else(|| err(0, "missing rank header"))?,
            agent: agent.ok_or_else(|| err(0, "missing agent header"))?,
            backends: backends.ok_or_else(|| err(0, "missing backends header"))?,
            interval_ns: interval_ns.ok_or_else(|| err(0, "missing interval header"))?,
            points,
            tags,
            completeness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> OutputFile {
        OutputFile {
            rank: 3,
            agent: "R00-M0-N04".into(),
            backends: vec!["bgq-emon".into()],
            interval_ns: 560_000_000,
            points: vec![
                DataPoint {
                    timestamp: SimTime::from_millis(560),
                    device: "nodecard".into(),
                    domain: "Chip Core".into(),
                    watts: 700.25,
                    volts: Some(0.9),
                    amps: Some(778.06),
                    temp_c: None,
                    stale: false,
                },
                DataPoint::power(SimTime::from_millis(1_120), "nodecard", "DRAM", 237.0),
            ]
            .into(),
            tags: vec![
                TagEvent {
                    label: "loop1".into(),
                    kind: TagKind::Start,
                    at: SimTime::from_millis(600),
                },
                TagEvent {
                    label: "loop1".into(),
                    kind: TagKind::End,
                    at: SimTime::from_millis(900),
                },
            ],
            completeness: vec![],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample_file();
        let text = f.render();
        let back = OutputFile::parse(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn header_is_first() {
        let text = sample_file().render();
        assert!(text.starts_with("# moneq-output-v1\n"));
        assert!(text.contains("# agent: R00-M0-N04"));
    }

    #[test]
    fn tags_render_after_records() {
        let text = sample_file().render();
        let tag_pos = text.find("TAG\tloop1").unwrap();
        let last_record = text.find("DRAM").unwrap();
        assert!(tag_pos > last_record, "tags must be injected after records");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(OutputFile::parse("").is_err());
        assert!(OutputFile::parse("garbage").is_err());
        let mut text = sample_file().render();
        text = text.replace("700.25", "not-a-number");
        assert!(OutputFile::parse(&text).is_err());
        let truncated = sample_file()
            .render()
            .replace("TAG\tloop1\tSTART", "TAG\tloop1");
        assert!(OutputFile::parse(&truncated).is_err());
    }

    #[test]
    fn missing_header_field_rejected() {
        let text = sample_file()
            .render()
            .replace("# interval_ns: 560000000\n", "");
        let e = OutputFile::parse(&text).unwrap_err();
        assert!(e.message.contains("interval"));
    }

    #[test]
    fn disk_roundtrip() {
        let f = sample_file();
        let dir = std::env::temp_dir().join(format!("moneq-test-{}", std::process::id()));
        let path = f.write_to(&dir).expect("writable temp dir");
        assert!(path.ends_with("moneq-rank00003-R00-M0-N04.dat"));
        let back = OutputFile::from_path(&path).expect("readable");
        assert_eq!(back, f);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_path_missing_file_errors() {
        let err = OutputFile::from_path(std::path::Path::new("/nonexistent/x.dat"))
            .expect_err("missing file must error");
        assert!(matches!(err, OutputError::Io(_)), "{err:?}");
        assert!(!err.to_string().is_empty());
        // A corrupt file surfaces as a Parse error with its line number.
        let dir = std::env::temp_dir().join(format!("moneq-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dat");
        std::fs::write(&path, "garbage\n").unwrap();
        let err = OutputFile::from_path(&path).expect_err("corrupt file must error");
        assert!(matches!(err, OutputError::Parse(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn optional_fields_roundtrip_as_dash() {
        let text = sample_file().render();
        // The DRAM record has no volts/amps/temp.
        let dram_line = text.lines().find(|l| l.contains("DRAM")).unwrap();
        assert!(dram_line.ends_with("-\t-\t-"));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        let mut f = sample_file();
        // Values with no finite decimal representation.
        let mut pts = f.points.to_vec();
        pts[0].watts = 0.1 + 0.2;
        pts[0].volts = Some(1.0 / 3.0);
        pts[0].amps = Some(f64::MIN_POSITIVE);
        pts[0].temp_c = Some(-1.234_567_890_123_456_7e-300);
        f.points = pts.into();
        let back = OutputFile::parse(&f.render()).unwrap();
        assert_eq!(
            back.points.first().unwrap().watts.to_bits(),
            f.points.first().unwrap().watts.to_bits()
        );
        assert_eq!(back, f);
    }

    #[test]
    fn hostile_labels_roundtrip_without_corrupting_framing() {
        let mut f = sample_file();
        f.agent = "node\t0\nwith\\evil\rname".into();
        f.backends = vec!["bgq,emon".into(), "tab\tbackend".into()];
        let mut pts = f.points.to_vec();
        pts[0].device = "dev\tice".into();
        pts[0].domain = "dom\nain".into();
        f.points = pts.into();
        f.tags[0].label = "loop\t1".into();
        f.tags[1].label = "loop\t1".into();
        let text = f.render();
        let back = OutputFile::parse(&text).unwrap();
        assert_eq!(back, f);
        // Every record line still frames as exactly 7 tab-separated fields.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let n = line.split('\t').count();
            assert!(n == 7 || (line.starts_with("TAG\t") && n == 4), "{line:?}");
        }
    }

    #[test]
    fn stale_marker_roundtrips_and_fresh_records_render_unchanged() {
        let mut f = sample_file();
        let mut pts = f.points.to_vec();
        pts[1].stale = true;
        f.points = pts.into();
        let text = f.render();
        let stale_line = text.lines().find(|l| l.contains("DRAM")).unwrap();
        assert!(stale_line.ends_with("\tS"), "{stale_line:?}");
        assert_eq!(stale_line.split('\t').count(), 8);
        // The fresh record keeps the exact 7-field pre-fault framing.
        let fresh_line = text.lines().find(|l| l.contains("Chip Core")).unwrap();
        assert_eq!(fresh_line.split('\t').count(), 7);
        let back = OutputFile::parse(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn completeness_roundtrips_through_cmp_lines() {
        let mut f = sample_file();
        let mut c = Completeness::new("bgq-emon");
        c.scheduled = 10;
        c.succeeded = 8;
        c.retried = 3;
        c.stale_polls = 1;
        c.missed_polls = 1;
        c.records_fresh = 56;
        c.records_stale = 7;
        c.records_lost = 7;
        c.disabled_at_ns = Some(5_600_000_000);
        c.disabled_ranks = vec![2, 3];
        let mut clean = Completeness::new("rapl\tmsr"); // hostile name
        clean.scheduled = 10;
        clean.succeeded = 10;
        clean.records_fresh = 40;
        f.completeness = vec![c, clean];
        let text = f.render();
        assert_eq!(text.lines().filter(|l| l.starts_with("CMP\t")).count(), 2);
        // The disabled device carries the 12th (ranks) field; the clean one
        // keeps the original 11-field framing.
        let lines: Vec<&str> = text.lines().filter(|l| l.starts_with("CMP\t")).collect();
        assert_eq!(lines[0].split('\t').count(), 12);
        assert!(lines[0].ends_with("\t2,3"), "{:?}", lines[0]);
        assert_eq!(lines[1].split('\t').count(), 11);
        let back = OutputFile::parse(&text).unwrap();
        assert_eq!(back, f);
        assert!(back.completeness[0].reconciles());
        assert_eq!(back.completeness[0].disabled_count(), 2);
    }

    #[test]
    fn eleven_field_cmp_lines_still_parse() {
        // Files written before the disabled-ranks field must keep loading.
        let good = sample_file().render();
        let legacy = format!("{good}CMP\tdev\t4\t2\t0\t0\t2\t2\t0\t2\t900\n");
        let back = OutputFile::parse(&legacy).unwrap();
        assert_eq!(back.completeness.len(), 1);
        assert_eq!(back.completeness[0].disabled_at_ns, Some(900));
        assert!(back.completeness[0].disabled_ranks.is_empty());
        // And a malformed 12th field is rejected, not ignored.
        let bad = format!("{good}CMP\tdev\t4\t2\t0\t0\t2\t2\t0\t2\t900\tx,y\n");
        assert!(OutputFile::parse(&bad).is_err());
    }

    #[test]
    fn malformed_stale_and_cmp_lines_rejected() {
        let good = sample_file().render();
        // An 8th field that is not the stale marker.
        let bad_marker = good.replacen("\t-\n", "\t-\tX\n", 1);
        assert!(OutputFile::parse(&bad_marker).is_err());
        // A CMP line with too few fields.
        let bad_cmp = format!("{good}CMP\tdev\t1\t1\n");
        assert!(OutputFile::parse(&bad_cmp).is_err());
        // A CMP line with a non-numeric counter.
        let bad_count = format!("{good}CMP\tdev\tx\t0\t0\t0\t0\t0\t0\t0\t-\n");
        assert!(OutputFile::parse(&bad_count).is_err());
    }

    #[test]
    fn unknown_or_dangling_escape_rejected() {
        let good = sample_file().render();
        let bad = good.replace("nodecard", "node\\xcard");
        assert!(OutputFile::parse(&bad).is_err());
        let dangling = good.replace("# agent: R00-M0-N04", "# agent: R00-M0-N04\\");
        assert!(OutputFile::parse(&dangling).is_err());
    }

    #[test]
    fn file_name_sanitizes_hostile_agent_names() {
        let mut f = sample_file();
        f.agent = "../../etc/passwd\tx".into();
        assert_eq!(f.file_name(), "moneq-rank00003-.._.._etc_passwd_x.dat");
        let dir = std::env::temp_dir().join(format!("moneq-hostile-{}", std::process::id()));
        let path = f.write_to(&dir).expect("writable temp dir");
        assert!(path.starts_with(&dir), "write must stay inside dir");
        // The header preserves the exact (escaped) name.
        let back = OutputFile::from_path(&path).expect("readable");
        assert_eq!(back.agent, f.agent);
        std::fs::remove_dir_all(&dir).ok();
    }
}
