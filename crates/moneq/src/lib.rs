//! # moneq — the unified power-profiling library (the paper's contribution)
//!
//! MonEQ started as a Blue Gene/Q power profiler; the paper extends it "to
//! support the most common of devices now found in supercomputers with the
//! same feature set and ease of use as before" (§III). This crate is that
//! extended library, rebuilt over the simulated platforms:
//!
//! ```no_run
//! use moneq::{MonEq, MonEqConfig};
//! use moneq::backends::RaplBackend;
//! use simkit::SimTime;
//!
//! # fn backend() -> RaplBackend { unimplemented!() }
//! // Listing 1, in Rust. Two calls around the user code:
//! let mut session = MonEq::initialize(
//!     0,                              // MPI rank
//!     vec![Box::new(backend())],
//!     MonEqConfig::default(),
//!     SimTime::ZERO,
//! );
//! /* user code runs; the SIGALRM-style timer polls in the background */
//! session.run_until(SimTime::from_secs(100));
//! let result = session.finalize(SimTime::from_secs(100));
//! # let _ = result;
//! ```
//!
//! Feature map to §III:
//!
//! * **default lowest interval** — `MonEqConfig::interval = None` polls at
//!   each backend's minimum reliable cadence;
//! * **SIGALRM polling** — [`session::MonEq::run_until`] fires the timer and
//!   records "the latest generation of environmental data available" into a
//!   **preallocated array** ([`MonEqConfig::max_samples`]);
//! * **finest granularity** — one session per agent rank (the node card on
//!   BG/Q, the node elsewhere); several accelerators on one node are each
//!   accounted individually in the node's file;
//! * **tagging** — [`session::MonEq::start_tag`]/[`session::MonEq::end_tag`]
//!   wrap code sections; markers are injected into the output at finalize
//!   ("because the injection happens after the program has completed, the
//!   overhead of tagging is almost negligible");
//! * **overhead discipline** — the costly work (file output) happens in
//!   finalize, outside the application's timed region; the only unavoidable
//!   runtime overhead is the periodic poll, charged per backend at the
//!   paper's measured per-query costs ([`overhead`]).

//!
//! Under fault injection ([`simkit::fault`]) the same sessions degrade
//! gracefully instead of crashing: typed read errors, bounded retry with
//! exponential backoff, last-good-value substitution with staleness flags,
//! per-device disable, and an exact per-device [`Completeness`] report
//! ([`completeness`]).
//!
//! With [`session::MonEqConfig::telemetry`] set, the same sessions also
//! record a deterministic observability layer ([`simkit::telemetry`]):
//! event counters, per-mechanism query-latency histograms, and
//! simulated-time spans, gathered per rank and merged across a cluster
//! exactly like [`Completeness`]. Disabled (the default), the layer costs
//! one branch per event and allocates nothing.
//!
//! A [`plan::CollectionPlan`] ([`cluster::ClusterRun::with_collection_plan`])
//! adds cadence-aware shared collection: ranks behind one sensor elect a
//! per-generation leader through a [`plan::SharedReadCache`], so a
//! 32-agent node card pays for one EMON query instead of 32. Off by
//! default; when on, output files stay byte-identical (sensors are
//! deterministic functions of grid time) — only the charged collection
//! cost drops.
//!
//! The deployment axis ([`plan::Deployment`]) makes the paper's in-band
//! vs. out-of-band distinction first-class: `Remote(link)` serves every
//! poll over a framed [`simkit::wire`] exchange through a
//! [`remote::RemoteBackend`], charging serialize/flight/deserialize time
//! on the virtual clock and subjecting reads to the link's fault weather.
//! Over a zero-cost, zero-fault link a remote run is byte-identical to
//! the local one — the invariant the transport test suite pins.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod backends;
pub mod cluster;
pub mod completeness;
pub mod control;
pub mod output;
pub mod overhead;
pub mod plan;
pub mod reading;
pub mod records;
pub mod remote;
pub mod session;
pub mod tags;

pub use backend::{
    EnvBackend, FaultGate, GateStats, Grant, Poll, ReadError, RetryPolicy, StatedLimitation,
};
pub use cluster::{host_cpus, ClusterResult, ClusterRun, SchedStats};
pub use completeness::Completeness;
pub use control::ControlHook;
pub use output::{OutputError, OutputFile, ParseError};
pub use overhead::{finalize_time, init_time, OverheadReport};
pub use plan::{CollectionPlan, Deployment, SharedLookup, SharedRead, SharedReadCache};
pub use reading::DataPoint;
pub use records::{DataPointRef, Records};
pub use remote::{BackendServer, RemoteBackend, RemoteMeta};
pub use session::{FinalizeResult, MonEq, MonEqConfig};
pub use tags::{TagEvent, TagKind};
