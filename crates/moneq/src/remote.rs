//! Remote mechanisms: the full [`EnvBackend`] surface served over the
//! [`simkit::wire`] framed protocol.
//!
//! The paper's in-band/out-of-band axis made first-class: a
//! [`RemoteBackend`] wraps any local backend behind a [`BackendServer`]
//! and a [`Transport`], so every poll becomes a request/response exchange
//! that pays serialize/flight/deserialize time on the virtual clock and
//! is subject to the link's drop/corrupt/reorder weather. The defining
//! invariant (asserted by the golden and property suites): over a
//! zero-fault, zero-cost link ([`LinkSpec::ideal`]) a remote session is
//! byte-identical to the local one — same records, same overhead ledger —
//! and any nonzero link latency shows up *exactly* in the overhead and
//! staleness ledgers, nowhere else.
//!
//! Protocol opcodes (responses echo the opcode with [`RESP_FLAG`] set and
//! the same sequence number):
//!
//! | kind | request payload | response payload |
//! |------|-----------------|------------------|
//! | [`REQ_META`] | empty | min_interval, poll_cost, cadence, replayable, records/poll |
//! | [`REQ_READ`] | empty (poll instant = arrival time) | result tag + [`Poll`] or [`ReadError`] |
//! | [`REQ_READ_MANY`] | agent count | result tag + polls or error |
//! | [`REQ_GATE`] | empty | presence tag + [`GateStats`] counters |
//!
//! Error mapping ([`WireError`] → [`ReadError`], DESIGN.md §14): a wire
//! timeout becomes [`ReadError::Timeout`] carrying the exact accumulated
//! stall (so the session's fault-recovery ledger charges it like any
//! mechanism stall); every other wire failure is a retryable
//! [`ReadError::Transient`].

use crate::backend::{EnvBackend, GateStats, Poll, ReadError, StatedLimitation};
use crate::reading::DataPoint;
use powermodel::{Metric, Platform, Support};
use simkit::rng::mix64;
use simkit::wire::{
    Frame, LinkSpec, LinkStats, SimTransport, Transport, WireError, WireReader, WireWriter,
};
use simkit::{SimDuration, SimTime};

/// Request opcode: mechanism metadata (cadence, costs, replayability).
pub const REQ_META: u8 = 0x01;
/// Request opcode: one poll.
pub const REQ_READ: u8 = 0x02;
/// Request opcode: one batched poll serving several co-resident agents.
pub const REQ_READ_MANY: u8 = 0x03;
/// Request opcode: the backend's fault-gate decision counters.
pub const REQ_GATE: u8 = 0x04;
/// OR-ed into a request opcode to form its response opcode.
pub const RESP_FLAG: u8 = 0x80;

/// Encode one [`DataPoint`] into a payload (exact f64 bit patterns).
pub fn encode_point(w: &mut WireWriter, p: &DataPoint) {
    w.u64(p.timestamp.as_nanos());
    w.str(&p.device);
    w.str(&p.domain);
    w.f64(p.watts);
    w.opt_f64(p.volts);
    w.opt_f64(p.amps);
    w.opt_f64(p.temp_c);
    w.bool(p.stale);
}

/// Decode one [`DataPoint`] written by [`encode_point`].
pub fn decode_point(r: &mut WireReader<'_>) -> Result<DataPoint, WireError> {
    Ok(DataPoint {
        timestamp: SimTime::from_nanos(r.u64()?),
        device: r.str()?.to_owned(),
        domain: r.str()?.to_owned(),
        watts: r.f64()?,
        volts: r.opt_f64()?,
        amps: r.opt_f64()?,
        temp_c: r.opt_f64()?,
        stale: r.bool()?,
    })
}

/// Encode one [`Poll`] (missing count + records).
pub fn encode_poll(w: &mut WireWriter, poll: &Poll) {
    w.u32(poll.missing);
    w.u32(u32::try_from(poll.points.len()).expect("record count fits u32"));
    for p in &poll.points {
        encode_point(w, p);
    }
}

/// Decode one [`Poll`] written by [`encode_poll`].
pub fn decode_poll(r: &mut WireReader<'_>) -> Result<Poll, WireError> {
    let missing = r.u32()?;
    let count = r.u32()?;
    // Guarded preallocation: a corrupted count cannot OOM the decoder.
    let mut points = Vec::with_capacity(count.min(4096) as usize);
    for _ in 0..count {
        points.push(decode_point(r)?);
    }
    Ok(Poll { points, missing })
}

/// Encode a [`ReadError`] (tag + variant payload).
pub fn encode_read_error(w: &mut WireWriter, e: &ReadError) {
    match e {
        ReadError::Transient(m) => {
            w.u8(0);
            w.str(m);
        }
        ReadError::Timeout { stalled } => {
            w.u8(1);
            w.u64(stalled.as_nanos());
        }
        ReadError::NoData => w.u8(2),
        ReadError::Unavailable(m) => {
            w.u8(3);
            w.str(m);
        }
    }
}

/// Decode a [`ReadError`] written by [`encode_read_error`].
pub fn decode_read_error(r: &mut WireReader<'_>) -> Result<ReadError, WireError> {
    match r.u8()? {
        0 => Ok(ReadError::Transient(r.str()?.to_owned())),
        1 => Ok(ReadError::Timeout {
            stalled: SimDuration::from_nanos(r.u64()?),
        }),
        2 => Ok(ReadError::NoData),
        3 => Ok(ReadError::Unavailable(r.str()?.to_owned())),
        _ => Err(WireError::Malformed("read-error tag")),
    }
}

/// Mechanism metadata exchanged once at connect (the `REQ_META` reply).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemoteMeta {
    /// The mechanism's minimum reliable polling interval.
    pub min_interval: SimDuration,
    /// Its per-poll access-path cost (the server charges this as
    /// processing time on every read exchange).
    pub poll_cost: SimDuration,
    /// Its update-grid cadence (drives the shared-read cache).
    pub read_cadence: SimDuration,
    /// Whether a stored poll may be replayed at the same instant.
    pub replayable: bool,
    /// Upper bound on records per poll.
    pub records_per_poll: u32,
}

fn encode_meta(m: &RemoteMeta) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(m.min_interval.as_nanos());
    w.u64(m.poll_cost.as_nanos());
    w.u64(m.read_cadence.as_nanos());
    w.bool(m.replayable);
    w.u32(m.records_per_poll);
    w.finish()
}

fn decode_meta(payload: &[u8]) -> Result<RemoteMeta, WireError> {
    let mut r = WireReader::new(payload);
    let m = RemoteMeta {
        min_interval: SimDuration::from_nanos(r.u64()?),
        poll_cost: SimDuration::from_nanos(r.u64()?),
        read_cadence: SimDuration::from_nanos(r.u64()?),
        replayable: r.bool()?,
        records_per_poll: r.u32()?,
    };
    r.expect_end()?;
    Ok(m)
}

fn encode_gate_stats(gs: Option<GateStats>) -> Vec<u8> {
    let mut w = WireWriter::new();
    match gs {
        None => w.u8(0),
        Some(gs) => {
            w.u8(1);
            for (_, n) in gs.kinds() {
                w.u64(n);
            }
        }
    }
    w.finish()
}

fn decode_gate_stats(payload: &[u8]) -> Result<Option<GateStats>, WireError> {
    let mut r = WireReader::new(payload);
    match r.u8()? {
        0 => {
            r.expect_end()?;
            Ok(None)
        }
        1 => {
            let gs = GateStats {
                admitted: r.u64()?,
                glitches: r.u64()?,
                transient: r.u64()?,
                timeout: r.u64()?,
                no_data: r.u64()?,
                blackout: r.u64()?,
                dropped_records: r.u64()?,
            };
            r.expect_end()?;
            Ok(Some(gs))
        }
        _ => Err(WireError::Malformed("gate-stats tag")),
    }
}

/// The server side: the wrapped mechanism plus the request dispatcher.
///
/// [`BackendServer::handle`] is the `serve` hook a [`Transport`] calls at
/// each request's virtual arrival time. A frame that fails to decode
/// (truncated, corrupted in flight, unknown opcode) is silently discarded
/// — the client sees a timeout and retransmits, exactly like a real
/// collection daemon dropping a bad datagram.
pub struct BackendServer {
    backend: Box<dyn EnvBackend>,
}

impl BackendServer {
    /// Put a mechanism behind the protocol.
    pub fn new(backend: Box<dyn EnvBackend>) -> Self {
        BackendServer { backend }
    }

    /// The wrapped mechanism (control-plane access: name, platform,
    /// capabilities — static facts that a deployment knows out of band).
    pub fn backend(&self) -> &dyn EnvBackend {
        self.backend.as_ref()
    }

    /// The mechanism's metadata as served by `REQ_META`.
    pub fn meta(&self) -> RemoteMeta {
        RemoteMeta {
            min_interval: self.backend.min_interval(),
            poll_cost: self.backend.poll_cost(),
            read_cadence: self.backend.read_cadence(),
            replayable: self.backend.replayable(),
            records_per_poll: u32::try_from(self.backend.records_per_poll())
                .expect("records_per_poll fits u32"),
        }
    }

    /// Serve one request frame arriving at virtual time `at`. Returns the
    /// server's processing time (the mechanism's access-path cost for
    /// reads, zero for metadata) and the encoded response — or `None` for
    /// an undecodable/unknown frame, which the server drops on the floor.
    pub fn handle(&mut self, at: SimTime, bytes: &[u8]) -> Option<(SimDuration, Vec<u8>)> {
        let frame = Frame::decode(bytes).ok()?;
        let (proc, payload) = match frame.kind {
            REQ_META => {
                if !frame.payload.is_empty() {
                    return None;
                }
                (SimDuration::ZERO, encode_meta(&self.meta()))
            }
            REQ_READ => {
                if !frame.payload.is_empty() {
                    return None;
                }
                let mut w = WireWriter::new();
                // The poll instant is the frame's arrival time on the
                // server clock: an ideal link reads at the client's own
                // instant; a latent link reads later — that shift *is*
                // the out-of-band staleness the ledgers must show.
                match self.backend.read(at) {
                    Ok(poll) => {
                        w.u8(0);
                        encode_poll(&mut w, &poll);
                    }
                    Err(e) => {
                        w.u8(1);
                        encode_read_error(&mut w, &e);
                    }
                }
                (self.backend.poll_cost(), w.finish())
            }
            REQ_READ_MANY => {
                let mut r = WireReader::new(&frame.payload);
                let agents = r.u32().ok()?;
                r.expect_end().ok()?;
                let mut w = WireWriter::new();
                match self.backend.read_many(at, agents as usize) {
                    Ok(polls) => {
                        w.u8(0);
                        w.u32(u32::try_from(polls.len()).expect("poll count fits u32"));
                        for p in &polls {
                            encode_poll(&mut w, p);
                        }
                    }
                    Err(e) => {
                        w.u8(1);
                        encode_read_error(&mut w, &e);
                    }
                }
                (self.backend.batched_cost(agents as usize), w.finish())
            }
            REQ_GATE => {
                if !frame.payload.is_empty() {
                    return None;
                }
                (
                    SimDuration::ZERO,
                    encode_gate_stats(self.backend.gate_stats()),
                )
            }
            _ => return None,
        };
        Some((
            proc,
            Frame::new(frame.kind | RESP_FLAG, frame.seq, payload).encode(),
        ))
    }
}

/// Placeholder backend used only while a slot's real backend is being
/// wrapped in place (`std::mem::replace`). Never polled.
struct NullBackend;

impl EnvBackend for NullBackend {
    fn name(&self) -> &'static str {
        "null"
    }
    fn platform(&self) -> Platform {
        Platform::Rapl
    }
    fn min_interval(&self) -> SimDuration {
        SimDuration::from_nanos(1)
    }
    fn poll_cost(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn capabilities(&self) -> Vec<(Metric, Support)> {
        Vec::new()
    }
    fn read(&mut self, _t: SimTime) -> Result<Poll, ReadError> {
        Err(ReadError::Unavailable("placeholder backend".into()))
    }
    fn records_per_poll(&self) -> usize {
        0
    }
}

/// A boxed placeholder for in-place backend swaps.
pub(crate) fn null_backend() -> Box<dyn EnvBackend> {
    Box::new(NullBackend)
}

/// A mechanism served over a [`Transport`].
///
/// Implements [`EnvBackend`] itself, so sessions, collection plans, the
/// cadence cache, and telemetry all compose unchanged: a poll turns into
/// a `REQ_READ` exchange whose round-trip time is charged through
/// [`EnvBackend::last_poll_cost`], and whose wire failures map onto the
/// [`ReadError`] taxonomy the session already degrades on.
///
/// Cost accounting mirrors the local charging discipline exactly: the
/// session charges one access-path crossing per poll, so only the first
/// *completed* exchange at each poll instant sets the charged cost
/// (session-level retries redraw values but never double-charge, locally
/// or remotely). Wire timeouts charge nothing here — their stall flows
/// through [`ReadError::Timeout`] into the fault-recovery ledger instead.
pub struct RemoteBackend<T: Transport = SimTransport> {
    server: BackendServer,
    transport: T,
    meta: RemoteMeta,
    seq: u64,
    /// Last RPC instant and its exchange count, keying fault draws the
    /// same way [`crate::backend::FaultGate`] keys attempts: per
    /// `(instant, index)`, order-independent across devices.
    rpc_at: Option<(SimTime, u32)>,
    /// When the previous exchange concluded. A client cannot transmit a
    /// new request before the previous exchange finished, so sends are
    /// serialized on `max(poll instant, ready_at)` — which also keeps
    /// server-side arrival times monotonic (stateful mechanisms like
    /// RAPL's snapshot delta require time to move forward).
    ready_at: SimTime,
    /// The poll instant the charged cost below belongs to.
    cost_at: SimTime,
    /// Round-trip time of the first completed exchange at `cost_at`.
    cost: SimDuration,
}

impl RemoteBackend<SimTransport> {
    /// Serve `inner` over a fresh [`SimTransport`] on `link`.
    pub fn connect(inner: Box<dyn EnvBackend>, link: LinkSpec) -> Self {
        Self::connect_salted(inner, link, 0)
    }

    /// [`RemoteBackend::connect`] with the link's noise streams salted —
    /// the cluster salts by rank so every rank's link has independent
    /// weather from one shared [`LinkSpec`].
    pub fn connect_salted(inner: Box<dyn EnvBackend>, link: LinkSpec, salt: u64) -> Self {
        Self::with_transport(inner, SimTransport::with_salt(link, salt))
    }
}

impl<T: Transport> RemoteBackend<T> {
    /// Serve `inner` over an arbitrary transport.
    ///
    /// The metadata hello (`REQ_META`) runs through the protocol against
    /// the server directly — connect-time control traffic is not part of
    /// the link's data-plane ledger, so it cannot pollute the round-trip
    /// histogram or the byte-identity overhead accounting.
    pub fn with_transport(inner: Box<dyn EnvBackend>, transport: T) -> Self {
        let mut server = BackendServer::new(inner);
        let hello = Frame::new(REQ_META, 0, Vec::new()).encode();
        let (_, resp) = server
            .handle(SimTime::ZERO, &hello)
            .expect("metadata hello must decode");
        let frame = Frame::decode(&resp).expect("metadata reply frames correctly");
        assert_eq!(frame.kind, REQ_META | RESP_FLAG, "metadata reply opcode");
        let meta = decode_meta(&frame.payload).expect("metadata reply decodes");
        RemoteBackend {
            server,
            transport,
            meta,
            seq: 0,
            rpc_at: None,
            ready_at: SimTime::ZERO,
            cost_at: SimTime::ZERO,
            cost: SimDuration::ZERO,
        }
    }

    /// The link personality this backend is served over.
    pub fn link(&self) -> &LinkSpec {
        self.transport.spec()
    }

    /// The exact transfer ledger so far.
    pub fn link_stats(&self) -> &LinkStats {
        self.transport.stats()
    }

    /// The metadata the connect-time hello returned.
    pub fn meta(&self) -> RemoteMeta {
        self.meta
    }

    /// One wire exchange at instant `t`: frames `payload` under `kind`,
    /// runs it through the transport, validates the response envelope.
    fn rpc(&mut self, kind: u8, t: SimTime, payload: Vec<u8>) -> Result<Vec<u8>, ReadError> {
        let index = match self.rpc_at {
            Some((at, n)) if at == t => n + 1,
            _ => 0,
        };
        self.rpc_at = Some((t, index));
        if self.cost_at != t {
            self.cost_at = t;
            self.cost = SimDuration::ZERO;
        }
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::new(kind, seq, payload).encode();
        let key = mix64(t.as_nanos(), u64::from(index));
        // Serialize exchanges: a retry (or a poll whose predecessor
        // overran its slot) transmits when the line is free, not in the
        // past. On a clean link that never retries, send == t exactly.
        let send = if t > self.ready_at { t } else { self.ready_at };
        let RemoteBackend {
            server, transport, ..
        } = self;
        let outcome = transport.round_trip(key, send, &request, &mut |at, bytes| {
            server.handle(at, bytes)
        });
        let (done, resp) = match outcome {
            Ok(ok) => ok,
            Err(WireError::Timeout { stalled }) => {
                self.ready_at = send.saturating_add(stalled);
                return Err(ReadError::Timeout { stalled });
            }
            Err(other) => return Err(ReadError::Transient(format!("wire: {other}"))),
        };
        self.ready_at = done;
        let frame = Frame::decode(&resp)
            .map_err(|e| ReadError::Transient(format!("wire: response {e}")))?;
        if frame.kind != kind | RESP_FLAG || frame.seq != seq {
            return Err(ReadError::Transient("wire: response mismatch".into()));
        }
        // One access-path charge per poll instant: the first completed
        // exchange sets it, session-level retries don't double-charge.
        if self.cost.is_zero() {
            self.cost = done.saturating_since(send);
        }
        Ok(frame.payload)
    }

    /// Fetch the remote mechanism's gate counters over the wire (the
    /// `REQ_GATE` exchange). [`EnvBackend::gate_stats`] serves the same
    /// counters in-process — this is the data-plane path for callers that
    /// want the protocol exercised (and charged) for real.
    pub fn fetch_gate_stats(&mut self, t: SimTime) -> Result<Option<GateStats>, ReadError> {
        let payload = self.rpc(REQ_GATE, t, Vec::new())?;
        decode_gate_stats(&payload)
            .map_err(|e| ReadError::Transient(format!("wire: gate stats {e}")))
    }
}

fn decode_read_result(payload: &[u8]) -> Result<Poll, ReadError> {
    let wire = |e: WireError| ReadError::Transient(format!("wire: read reply {e}"));
    let mut r = WireReader::new(payload);
    match r.u8().map_err(wire)? {
        0 => {
            let poll = decode_poll(&mut r).map_err(wire)?;
            r.expect_end().map_err(wire)?;
            Ok(poll)
        }
        1 => {
            let e = decode_read_error(&mut r).map_err(wire)?;
            r.expect_end().map_err(wire)?;
            Err(e)
        }
        _ => Err(wire(WireError::Malformed("result tag"))),
    }
}

impl<T: Transport + Send> EnvBackend for RemoteBackend<T> {
    fn name(&self) -> &'static str {
        self.server.backend.name()
    }

    fn platform(&self) -> Platform {
        self.server.backend.platform()
    }

    fn min_interval(&self) -> SimDuration {
        self.meta.min_interval
    }

    fn poll_cost(&self) -> SimDuration {
        self.meta.poll_cost
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        self.server.backend.capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        let payload = self.rpc(REQ_READ, t, Vec::new())?;
        decode_read_result(&payload)
    }

    fn read_cadence(&self) -> SimDuration {
        self.meta.read_cadence
    }

    fn replayable(&self) -> bool {
        // A stored poll replays bit-exactly only when the wire can neither
        // delay nor damage it: any link cost shifts served timestamps, any
        // fault process is per-attempt state.
        self.meta.replayable && self.transport.spec().is_free()
    }

    fn read_many(&mut self, t: SimTime, agents: usize) -> Result<Vec<Poll>, ReadError> {
        let mut w = WireWriter::new();
        w.u32(u32::try_from(agents).expect("agent count fits u32"));
        let payload = self.rpc(REQ_READ_MANY, t, w.finish())?;
        let wire = |e: WireError| ReadError::Transient(format!("wire: read_many reply {e}"));
        let mut r = WireReader::new(&payload);
        match r.u8().map_err(wire)? {
            0 => {
                let count = r.u32().map_err(wire)?;
                let mut polls = Vec::with_capacity(count.min(4096) as usize);
                for _ in 0..count {
                    polls.push(decode_poll(&mut r).map_err(wire)?);
                }
                r.expect_end().map_err(wire)?;
                Ok(polls)
            }
            1 => {
                let e = decode_read_error(&mut r).map_err(wire)?;
                r.expect_end().map_err(wire)?;
                Err(e)
            }
            _ => Err(wire(WireError::Malformed("result tag"))),
        }
    }

    fn batched_cost(&self, agents: usize) -> SimDuration {
        self.server.backend.batched_cost(agents)
    }

    fn records_per_poll(&self) -> usize {
        self.meta.records_per_poll as usize
    }

    fn limitations(&self) -> Vec<StatedLimitation> {
        let mut out = self.server.backend.limitations();
        let spec = self.transport.spec();
        out.push(StatedLimitation::new(
            "deployment",
            format!(
                "served out-of-band over a link with {} flight latency; every poll is a framed round-trip",
                spec.latency
            ),
        ));
        out
    }

    fn gate_stats(&self) -> Option<GateStats> {
        self.server.backend.gate_stats()
    }

    fn last_poll_cost(&self) -> SimDuration {
        self.cost
    }

    fn wire_stats(&self) -> Option<LinkStats> {
        Some(self.transport.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::wire::LinkSpec;

    /// A deterministic two-record backend with optional scripted failures.
    struct Bench {
        cost: SimDuration,
        fail_at: Option<u64>,
        reads: u64,
    }

    impl Bench {
        fn boxed(cost_us: u64) -> Box<dyn EnvBackend> {
            Box::new(Bench {
                cost: SimDuration::from_micros(cost_us),
                fail_at: None,
                reads: 0,
            })
        }
    }

    impl EnvBackend for Bench {
        fn name(&self) -> &'static str {
            "bench"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(60)
        }
        fn poll_cost(&self) -> SimDuration {
            self.cost
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
            self.reads += 1;
            if self.fail_at == Some(self.reads) {
                return Err(ReadError::NoData);
            }
            let mut a = DataPoint::power(t, "dev0", "pkg", 42.5);
            a.volts = Some(1.05);
            a.temp_c = Some(61.0);
            let b = DataPoint::power(t, "dev1", "dram", 7.25);
            Ok(Poll::with_missing(vec![a, b], 1))
        }
        fn records_per_poll(&self) -> usize {
            2
        }
    }

    #[test]
    fn point_and_poll_codecs_roundtrip_exactly() {
        let mut p = DataPoint::power(SimTime::from_nanos(123_456_789), "gpu0", "board", -0.0);
        p.volts = Some(f64::MIN_POSITIVE);
        p.amps = Some(1.0 / 3.0);
        p.stale = true;
        let poll = Poll::with_missing(vec![p, DataPoint::power(SimTime::ZERO, "", "", 5.5)], 3);
        let mut w = WireWriter::new();
        encode_poll(&mut w, &poll);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let back = decode_poll(&mut r).unwrap();
        r.expect_end().unwrap();
        // PartialEq is not enough for the -0.0 payload: compare bits.
        assert_eq!(back.missing, poll.missing);
        assert_eq!(back.points.len(), poll.points.len());
        assert_eq!(
            back.points[0].watts.to_bits(),
            poll.points[0].watts.to_bits()
        );
        assert_eq!(back, poll);
    }

    #[test]
    fn every_read_error_variant_roundtrips() {
        let cases = [
            ReadError::Transient("EIO on msr 0x611".into()),
            ReadError::Timeout {
                stalled: SimDuration::from_millis(50),
            },
            ReadError::NoData,
            ReadError::Unavailable("sampling blackout".into()),
        ];
        for e in cases {
            let mut w = WireWriter::new();
            encode_read_error(&mut w, &e);
            let buf = w.finish();
            let mut r = WireReader::new(&buf);
            assert_eq!(decode_read_error(&mut r).unwrap(), e);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn gate_stats_roundtrip_including_absent() {
        for gs in [
            None,
            Some(GateStats::default()),
            Some(GateStats {
                admitted: 10,
                glitches: 1,
                transient: 2,
                timeout: 3,
                no_data: 4,
                blackout: 5,
                dropped_records: 6,
            }),
        ] {
            assert_eq!(decode_gate_stats(&encode_gate_stats(gs)).unwrap(), gs);
        }
    }

    #[test]
    fn ideal_link_read_matches_local_and_charges_poll_cost() {
        let t = SimTime::from_millis(560);
        let mut local = Bench::boxed(30);
        let want = local.read(t).unwrap();
        let mut remote = RemoteBackend::connect(Bench::boxed(30), LinkSpec::ideal());
        let got = remote.read(t).unwrap();
        assert_eq!(got, want, "ideal link must be value-transparent");
        // The charged cost over an ideal link is exactly the mechanism's
        // own poll cost (server processing time is the only time charged).
        assert_eq!(remote.last_poll_cost(), SimDuration::from_micros(30));
        assert_eq!(remote.poll_cost(), SimDuration::from_micros(30));
        let ws = remote.wire_stats().unwrap();
        assert_eq!((ws.tx, ws.rx, ws.timeouts), (1, 1, 0));
    }

    #[test]
    fn metadata_hello_mirrors_the_inner_backend() {
        let remote = RemoteBackend::connect(Bench::boxed(30), LinkSpec::ideal());
        assert_eq!(remote.name(), "bench");
        assert_eq!(remote.min_interval(), SimDuration::from_millis(60));
        assert_eq!(remote.read_cadence(), SimDuration::from_millis(60));
        assert_eq!(remote.records_per_poll(), 2);
        assert!(!remote.replayable());
        assert!(remote
            .limitations()
            .iter()
            .any(|l| l.aspect == "deployment"));
    }

    #[test]
    fn latent_link_shifts_read_instants_and_charges_the_wire() {
        let spec = LinkSpec {
            latency: SimDuration::from_millis(1),
            ..LinkSpec::ideal()
        };
        let t = SimTime::from_millis(560);
        let mut remote = RemoteBackend::connect(Bench::boxed(30), spec);
        let got = remote.read(t).unwrap();
        // The server read one flight later: timestamps shift by exactly
        // the request leg.
        assert_eq!(got.points[0].timestamp, t + SimDuration::from_millis(1));
        // Charged cost = 2 legs + processing, exactly.
        let req = Frame::new(REQ_READ, 1, Vec::new()).encode();
        let mut w = WireWriter::new();
        w.u8(0);
        encode_poll(&mut w, &got);
        let resp = Frame::new(REQ_READ | RESP_FLAG, 1, w.finish()).encode();
        assert_eq!(
            remote.last_poll_cost(),
            spec.leg_time(req.len()) + SimDuration::from_micros(30) + spec.leg_time(resp.len())
        );
    }

    #[test]
    fn server_error_passes_through_and_cost_charges_once() {
        let t = SimTime::from_millis(60);
        let mut inner = Bench {
            cost: SimDuration::from_micros(30),
            fail_at: Some(1),
            reads: 0,
        };
        let local_err = inner.read(t).unwrap_err();
        let mut remote = RemoteBackend::connect(
            Box::new(Bench {
                cost: SimDuration::from_micros(30),
                fail_at: Some(1),
                reads: 0,
            }),
            LinkSpec::ideal(),
        );
        assert_eq!(remote.read(t).unwrap_err(), local_err);
        // A session-level retry at the same instant completes but must
        // not double-charge the access path.
        assert!(remote.read(t).is_ok());
        assert_eq!(remote.last_poll_cost(), SimDuration::from_micros(30));
        // A new poll instant resets the charge.
        assert!(remote.read(SimTime::from_millis(120)).is_ok());
        assert_eq!(remote.last_poll_cost(), SimDuration::from_micros(30));
    }

    #[test]
    fn dead_link_maps_to_read_timeout_with_exact_stall() {
        let spec = LinkSpec::ideal().with_faults(1.0, 0.0, 0.0);
        let mut remote = RemoteBackend::connect(Bench::boxed(30), spec);
        let err = remote.read(SimTime::from_millis(60)).unwrap_err();
        let attempts = u64::from(spec.max_retrans) + 1;
        assert_eq!(
            err,
            ReadError::Timeout {
                stalled: SimDuration::from_nanos(spec.timeout.as_nanos() * attempts)
            }
        );
        assert!(err.is_retryable(), "wire timeouts retry like stalls");
        // Nothing completed, nothing charged.
        assert_eq!(remote.last_poll_cost(), SimDuration::ZERO);
    }

    #[test]
    fn read_many_roundtrips_over_the_wire() {
        let t = SimTime::from_millis(60);
        let mut local = Bench::boxed(30);
        let want = local.read_many(t, 4).unwrap();
        let mut remote = RemoteBackend::connect(Bench::boxed(30), LinkSpec::ideal());
        let got = remote.read_many(t, 4).unwrap();
        assert_eq!(got, want);
        assert_eq!(got.len(), 4);
        // Batched charge: one access-path crossing for the whole batch.
        assert_eq!(remote.last_poll_cost(), SimDuration::from_micros(30));
    }

    #[test]
    fn gate_stats_rpc_roundtrips() {
        let mut remote = RemoteBackend::connect(Bench::boxed(30), LinkSpec::ideal());
        // Bench has no gate: the RPC must carry the absence faithfully.
        assert_eq!(
            remote.fetch_gate_stats(SimTime::from_secs(1)).unwrap(),
            None
        );
        assert_eq!(remote.gate_stats(), None);
    }

    #[test]
    fn server_drops_malformed_and_unknown_frames() {
        let mut server = BackendServer::new(Bench::boxed(30));
        let t = SimTime::ZERO;
        assert!(server.handle(t, b"not a frame").is_none());
        let unknown = Frame::new(0x7F, 1, Vec::new()).encode();
        assert!(server.handle(t, &unknown).is_none());
        let mut bad = Frame::new(REQ_READ, 1, Vec::new()).encode();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(server.handle(t, &bad).is_none(), "checksum must be checked");
        // Trailing payload on a bodyless request is rejected too.
        let junk = Frame::new(REQ_READ, 1, vec![9]).encode();
        assert!(server.handle(t, &junk).is_none());
    }
}
