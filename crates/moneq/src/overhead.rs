//! Overhead accounting (Table III).
//!
//! MonEQ's overhead has three parts, each timed separately in Table III:
//!
//! * **initialization** — "set\[s\] up data structures and register\[s\]
//!   timers"; nearly scale-independent (2.7–3.3 ms from 32 to 1,024 nodes);
//! * **collection** — "the only unavoidable overhead to a running program
//!   is the periodic call to record data"; identical on every node (0.3871 s
//!   at all three scales), equal to `polls × per-poll cost`;
//! * **finalize** — "really has the most to do in terms of actually writing
//!   the collected data to disk and therefore does depend on the scale":
//!   0.151 / 0.155 / 0.3347 s at 32 / 512 / 1,024 nodes.
//!
//! The finalize model is an I/O-wave model calibrated to those three
//! points: agents write through a striped filesystem that absorbs
//! [`IO_STRIPE_WIDTH`] concurrent writers per wave; each extra wave costs a
//! full round trip.

use simkit::SimDuration;

/// Concurrent agent writes the I/O path absorbs before serializing.
pub const IO_STRIPE_WIDTH: usize = 16;
/// Base cost of one write wave.
pub const WAVE_BASE: SimDuration = SimDuration::from_millis(150);
/// Cost of each additional wave.
pub const WAVE_EXTRA: SimDuration = SimDuration::from_millis(175);
/// Per-agent metadata cost.
pub const PER_AGENT: SimDuration = SimDuration::from_micros(300);
/// Base initialization cost (data structures + timer registration).
pub const INIT_BASE: SimDuration = SimDuration::from_micros(2_700);
/// Initialization grows logarithmically with agent count (collective setup).
pub const INIT_PER_LOG2: SimDuration = SimDuration::from_micros(120);

/// Initialization time for a run with `agents` agent ranks.
pub fn init_time(agents: usize) -> SimDuration {
    assert!(agents >= 1);
    let log2 = usize::BITS - 1 - agents.leading_zeros(); // floor(log2)
    INIT_BASE + INIT_PER_LOG2 * u64::from(log2)
}

/// Finalize time for a run with `agents` agent ranks.
pub fn finalize_time(agents: usize) -> SimDuration {
    assert!(agents >= 1);
    let waves = agents.div_ceil(IO_STRIPE_WIDTH) as u64;
    WAVE_BASE + WAVE_EXTRA * (waves - 1) + PER_AGENT * agents as u64
}

/// Per-run overhead summary (one Table III column).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverheadReport {
    /// Application runtime (virtual).
    pub app_runtime: SimDuration,
    /// Time spent in initialization.
    pub init: SimDuration,
    /// Time spent in finalize.
    pub finalize: SimDuration,
    /// Total time spent in periodic collection calls.
    pub collection: SimDuration,
    /// Time spent recovering from faults: retry re-queries, exponential
    /// backoff waits, and (capped) timeout stalls. Zero in an un-faulted
    /// run, so Table III is unchanged there.
    pub fault_recovery: SimDuration,
    /// Number of polls performed.
    pub polls: u64,
    /// Number of retry attempts performed across all polls.
    pub retries: u64,
}

impl OverheadReport {
    /// Total MonEQ time (the Table III bottom row, plus fault recovery
    /// when faults were injected).
    pub fn total(&self) -> SimDuration {
        self.init + self.finalize + self.collection + self.fault_recovery
    }

    /// Total overhead as a fraction of the application runtime.
    pub fn fraction(&self) -> f64 {
        if self.app_runtime.is_zero() {
            0.0
        } else {
            self.total().as_secs_f64() / self.app_runtime.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_matches_table3() {
        // 32 nodes = 1 agent (one node card), 512 = 16, 1024 = 32.
        let ms = |a: usize| init_time(a).as_secs_f64() * 1e3;
        assert!((ms(1) - 2.7).abs() < 0.05, "1 agent: {}", ms(1));
        assert!((ms(16) - 3.2).abs() < 0.1, "16 agents: {}", ms(16));
        assert!((ms(32) - 3.3).abs() < 0.1, "32 agents: {}", ms(32));
    }

    #[test]
    fn finalize_matches_table3() {
        let s = |a: usize| finalize_time(a).as_secs_f64();
        assert!((s(1) - 0.151).abs() < 0.002, "1 agent: {}", s(1));
        assert!((s(16) - 0.155).abs() < 0.002, "16 agents: {}", s(16));
        assert!((s(32) - 0.3347).abs() < 0.005, "32 agents: {}", s(32));
    }

    #[test]
    fn finalize_is_monotone_in_agents() {
        let mut last = SimDuration::ZERO;
        for a in 1..200 {
            let f = finalize_time(a);
            assert!(f >= last, "finalize not monotone at {a}");
            last = f;
        }
    }

    #[test]
    fn report_totals() {
        let r = OverheadReport {
            app_runtime: SimDuration::from_millis(202_740),
            init: SimDuration::from_micros(2_700),
            finalize: SimDuration::from_millis(151),
            collection: SimDuration::from_millis(387),
            polls: 352,
            ..OverheadReport::default()
        };
        let total = r.total().as_secs_f64();
        assert!((total - 0.5407).abs() < 0.001, "total {total}");
        // ~0.27% of the application; "about 0.4%" at the 1K scale.
        assert!(r.fraction() < 0.01);
    }
}
