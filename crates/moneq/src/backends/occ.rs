//! The POWER9 OCC backend (in-band sensor-buffer reads via OPAL).

use crate::backend::{EnvBackend, FaultGate, Poll, ReadError};
use crate::reading::DataPoint;
use occ_sim::{Occ, Power9Chip, OCC_INBAND_QUERY_COST, OCC_TICK};
use powermodel::{Metric, Platform, Support};
use simkit::fault::FaultPlan;
use simkit::wire::LinkSpec;
use simkit::{SimDuration, SimTime};
use std::sync::Arc;

/// MonEQ's POWER9 backend: reads the OCC's latest completed sensor buffer
/// out of OPAL-mapped main memory. Cheap (a mapped read, ~20 µs) and
/// non-perturbing (the OCC runs on its own microcontroller), but every
/// read is at least one 25 ms generation old, and a stale-buffer glitch
/// serves the generation before that.
pub struct OccBackend {
    chip: Arc<Power9Chip>,
    occ: Arc<Occ>,
    gate: FaultGate,
}

impl OccBackend {
    /// Attach to the OCC of `chip`.
    pub fn new(chip: Arc<Power9Chip>, occ: Arc<Occ>) -> Self {
        OccBackend {
            chip,
            occ,
            gate: FaultGate::none(),
        }
    }

    /// Subject this backend to the run's fault plan under the OCC
    /// pathology profile ([`occ_sim::fault_profile`]: stale sensor
    /// buffers, safe-mode blackouts, transient `OCC_BUSY`). `label` names
    /// the device's fault stream; use a per-rank label so ranks fail
    /// independently.
    pub fn with_faults(mut self, plan: &FaultPlan, label: &str) -> Self {
        self.gate = FaultGate::from_plan(plan, label, occ_sim::fault_profile());
        self
    }

    /// The link personality an out-of-band deployment of this mechanism
    /// rides on. The buffer read itself is in-band (mapped main memory);
    /// remote service relays through the host over the cluster
    /// interconnect — a LAN-class hop.
    pub fn service_link() -> LinkSpec {
        LinkSpec::lan()
    }
}

impl EnvBackend for OccBackend {
    fn name(&self) -> &'static str {
        "p9-occ"
    }

    fn platform(&self) -> Platform {
        occ_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        OCC_TICK
    }

    fn poll_cost(&self) -> SimDuration {
        OCC_INBAND_QUERY_COST
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        occ_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        let grant = self.gate.admit(t)?;
        // A glitch is the OCC main loop missing its deadline: the previous
        // generation stays mapped and the read "succeeds" with old data.
        let reading = if grant.glitch {
            self.occ.read_stale(&self.chip, t)
        } else {
            self.occ.read(&self.chip, t)
        };
        let point = DataPoint {
            timestamp: t,
            device: "p9chip0".into(),
            domain: "socket".into(),
            watts: f64::from(reading.socket_power_w),
            volts: None,
            amps: None,
            temp_c: Some(reading.die_temp_c),
            stale: grant.glitch,
        };
        let (kept, missing) = self.gate.filter(t, vec![point]);
        Ok(Poll::with_missing(kept, missing))
    }

    fn read_cadence(&self) -> SimDuration {
        // The OCC completes a sensor buffer every 25 ms; reads inside one
        // tick are served from the same generation.
        OCC_TICK
    }

    fn replayable(&self) -> bool {
        // The buffer is a pure function of the query instant (the chip and
        // accumulator are deterministic models), so an un-faulted stored
        // poll replays exactly.
        !self.gate.is_active()
    }

    fn records_per_poll(&self) -> usize {
        1
    }

    fn gate_stats(&self) -> Option<crate::backend::GateStats> {
        self.gate.is_active().then(|| self.gate.stats())
    }

    fn limitations(&self) -> Vec<crate::backend::StatedLimitation> {
        use crate::backend::StatedLimitation as L;
        vec![
            L::new(
                "staleness",
                "reads observe the latest completed ~25 ms sensor buffer; a \
                 missed main-loop deadline leaves the previous buffer mapped",
            ),
            L::new(
                "overflow",
                "energy accumulation counters are fixed-width and wrap; \
                 consumers must difference reads modulo the register width",
            ),
            L::new(
                "granularity",
                "published power sensors are whole watts -- the coarsest \
                 report quantum of any mechanism compared here",
            ),
            L::new(
                "deployment",
                "in-band via OPAL-mapped main memory; after an internal \
                 error the OCC drops to safe mode and is dark until the \
                 service processor resets it",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::Noop;
    use occ_sim::P9Spec;

    fn backend() -> OccBackend {
        let chip = Arc::new(Power9Chip::new(
            P9Spec::default(),
            &Noop::figure4().profile(),
            SimTime::from_secs(200),
        ));
        OccBackend::new(chip, Arc::new(Occ::new()))
    }

    #[test]
    fn poll_reports_whole_watt_socket_power_with_temp() {
        let mut b = backend();
        let points = b.poll(SimTime::from_secs(60));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!((100.0..200.0).contains(&p.watts), "watts {}", p.watts);
        assert_eq!(p.watts, p.watts.round(), "whole watts");
        assert!(p.temp_c.is_some() && p.volts.is_none() && p.amps.is_none());
        assert_eq!(p.device, "p9chip0");
    }

    #[test]
    fn reads_quantize_to_the_25ms_grid() {
        let mut b = backend();
        let a = b.poll(SimTime::from_millis(60_005));
        let c = b.poll(SimTime::from_millis(60_020));
        assert_eq!(a[0].watts, c[0].watts);
        assert_eq!(b.read_cadence(), SimDuration::from_millis(25));
        assert_eq!(b.min_interval(), SimDuration::from_millis(25));
    }

    #[test]
    fn cost_is_a_mapped_read() {
        let b = backend();
        assert_eq!(b.poll_cost(), SimDuration::from_micros(20));
        assert!(b.replayable());
    }

    #[test]
    fn faulted_backend_is_not_replayable_and_serves_stale_buffers() {
        let plan = FaultPlan::uniform(7, 0.2);
        let mut b = backend().with_faults(&plan, "p9chip0");
        assert!(!b.replayable());
        // Somewhere in a long drive the glitch rate must fire and serve
        // the previous generation, flagged stale.
        let mut saw_stale = false;
        for k in 0..400u64 {
            let t = SimTime::from_millis(1_000 + k * 25);
            if let Ok(poll) = b.read(t) {
                for p in &poll.points {
                    if p.stale {
                        saw_stale = true;
                    }
                }
            }
        }
        assert!(saw_stale, "no stale buffer served at a 20% uniform rate");
        assert!(b.gate_stats().is_some());
    }
}
