//! The RAPL backend: MSR snapshots turned into per-domain power.

use crate::backend::{EnvBackend, FaultGate, Poll, ReadError};
use crate::reading::DataPoint;
use powermodel::{Metric, Platform, Support};
use rapl_sim::{MsrAccess, MsrDevice, PowerReader, PowerSource, RaplDomain, MSR_QUERY_COST};
use simkit::fault::FaultPlan;
use simkit::wire::LinkSpec;
use simkit::{NoiseStream, SimDuration, SimTime};
use std::sync::Arc;

/// MonEQ's RAPL backend. Power is a derived quantity, so the first poll
/// only takes baseline snapshots and reports nothing; every later poll
/// reports the wrap-corrected average power of each domain since the
/// previous poll.
pub struct RaplBackend {
    reader: PowerReader,
    prev: Option<(SimTime, [u64; 4])>,
    gate: FaultGate,
}

impl RaplBackend {
    /// Attach to a socket (opens `/dev/cpu/0/msr`; the caller must have the
    /// access the paper's chmod discussion requires). Any [`PowerSource`]
    /// works — the passive [`rapl_sim::SocketModel`] or the capped
    /// closed-loop [`rapl_sim::CappedSocket`].
    pub fn new(socket: Arc<dyn PowerSource>, access: MsrAccess, seed: u64) -> Result<Self, String> {
        let device = MsrDevice::open(socket, 0, access, &NoiseStream::new(seed))
            .map_err(|e| e.to_string())?;
        Ok(RaplBackend {
            reader: PowerReader::new(device),
            prev: None,
            gate: FaultGate::none(),
        })
    }

    /// Subject this backend to the run's fault plan under the RAPL
    /// pathology profile ([`rapl_sim::fault_profile`]: transient `EIO`
    /// reads, stuck/wrapped counters, brief driver stalls). `label` names
    /// the device's fault stream; use a per-rank label so ranks fail
    /// independently.
    pub fn with_faults(mut self, plan: &FaultPlan, label: &str) -> Self {
        self.gate = FaultGate::from_plan(plan, label, rapl_sim::fault_profile());
        self
    }

    /// The link personality an out-of-band deployment of this mechanism
    /// rides on. RAPL is an in-band mechanism — the MSRs only exist on
    /// the node — so serving it remotely means a node-local collection
    /// daemon answering over the cluster interconnect: a LAN-class hop.
    pub fn service_link() -> LinkSpec {
        LinkSpec::lan()
    }

    fn snapshots(&self, t: SimTime) -> [u64; 4] {
        RaplDomain::ALL.map(|d| {
            self.reader
                .snapshot(d, t)
                .expect("energy-status registers always readable once open")
        })
    }
}

impl EnvBackend for RaplBackend {
    fn name(&self) -> &'static str {
        "rapl-msr"
    }

    fn platform(&self) -> Platform {
        rapl_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        // "relatively accurate for data collection at about 60ms" (§II-B).
        SimDuration::from_millis(60)
    }

    fn poll_cost(&self) -> SimDuration {
        // One MSR read per domain.
        MSR_QUERY_COST * RaplDomain::ALL.len() as u64
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        rapl_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        let grant = self.gate.admit(t)?;
        if grant.glitch {
            // Stuck counter: the MSR serves the previous raw values again,
            // so the energy delta over the window is zero — 0 W, flagged
            // stale. `prev` is deliberately NOT advanced: the next clean
            // poll computes power over the whole elapsed span, so energy
            // stays conserved (this is the paper's missed-wrap
            // under-reporting made explicit and recoverable).
            let out = match self.prev {
                None => Vec::new(),
                Some(_) => RaplDomain::ALL
                    .iter()
                    .map(|d| {
                        let mut p = DataPoint::power(t, "socket0", d.name(), 0.0);
                        p.stale = true;
                        p
                    })
                    .collect(),
            };
            return Ok(Poll::complete(out));
        }
        let now = self.snapshots(t);
        let out = match self.prev {
            None => Vec::new(),
            Some((pt, prev_raw)) => {
                let elapsed = t - pt;
                RaplDomain::ALL
                    .iter()
                    .enumerate()
                    .map(|(i, d)| {
                        DataPoint::power(
                            t,
                            "socket0",
                            d.name(),
                            self.reader.power_between(prev_raw[i], now[i], elapsed),
                        )
                    })
                    .collect()
            }
        };
        self.prev = Some((t, now));
        let (kept, missing) = self.gate.filter(t, out);
        Ok(Poll::with_missing(kept, missing))
    }

    fn read_cadence(&self) -> SimDuration {
        // The energy-status counters tick on a ~1 ms grid; reads inside
        // one tick observe the same counter generation. (The ±50k-cycle
        // jitter never matters for caching: RAPL stays non-replayable, so
        // only the access-path cost is shared, never a stored value.)
        SimDuration::from_millis(1)
    }

    // `replayable` stays the default `false`: power is a delta against the
    // previous snapshot (`self.prev`), so a served value depends on this
    // backend's own polling history, not just the query instant.

    fn records_per_poll(&self) -> usize {
        RaplDomain::ALL.len()
    }

    fn gate_stats(&self) -> Option<crate::backend::GateStats> {
        // An inactive gate never touches its counters; reporting `None`
        // instead of an all-zero ledger lets finalize skip the per-kind
        // fold entirely on the (default) fault-free path, with byte-for-
        // byte identical output either way.
        self.gate.is_active().then(|| self.gate.stats())
    }

    fn limitations(&self) -> Vec<crate::backend::StatedLimitation> {
        use crate::backend::StatedLimitation as L;
        vec![
            L::new(
                "scope",
                "metrics are per socket; per-core power and per-channel DRAM \
                 power do not exist, and per-core limits cannot be set",
            ),
            L::new(
                "overflow",
                "the 32-bit energy counters wrap; sampling intervals beyond \
                 ~60 s at TDP silently under-report",
            ),
            L::new(
                "accuracy",
                "counter updates jitter within ±50,000 cycles; windows much \
                 shorter than ~60 ms are unreliable",
            ),
            L::new(
                "access",
                "MSR reads need root or an explicitly configured read-only \
                 msr device; the perf path needs kernel >= 3.14",
            ),
            L::new(
                "deployment",
                "strictly in-band: the MSRs exist only on the node, so any \
                 off-node view must relay through a daemon and inherits the \
                 relay's latency and loss",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::GaussianElimination;
    use rapl_sim::{SocketModel, SocketSpec};

    fn backend() -> RaplBackend {
        let socket = Arc::new(SocketModel::new(
            SocketSpec::default(),
            &GaussianElimination::figure3().profile(),
        ));
        RaplBackend::new(socket, MsrAccess::root(), 3).unwrap()
    }

    #[test]
    fn first_poll_is_baseline_only() {
        let mut b = backend();
        assert!(b.poll(SimTime::from_secs(1)).is_empty());
        let second = b.poll(SimTime::from_millis(1_100));
        assert_eq!(second.len(), 4);
    }

    #[test]
    fn reported_pkg_power_is_plausible() {
        let mut b = backend();
        b.poll(SimTime::from_secs(10));
        let points = b.poll(SimTime::from_millis(10_100));
        let pkg = points
            .iter()
            .find(|p| p.domain.contains("Package"))
            .unwrap();
        assert!((40.0..55.0).contains(&pkg.watts), "pkg {}", pkg.watts);
        let pp1 = points
            .iter()
            .find(|p| p.domain.contains("Plane 1"))
            .unwrap();
        assert!(pp1.watts < 1.0, "iGPU plane should be idle");
    }

    #[test]
    fn permission_failure_surfaces() {
        let socket = Arc::new(SocketModel::new(
            SocketSpec::default(),
            &GaussianElimination::figure3().profile(),
        ));
        let err = RaplBackend::new(socket, MsrAccess::user(), 3)
            .err()
            .unwrap();
        assert!(err.contains("permission denied"), "{err}");
    }

    #[test]
    fn poll_cost_is_four_msr_reads() {
        let b = backend();
        assert_eq!(b.poll_cost(), SimDuration::from_micros(120));
    }
}
