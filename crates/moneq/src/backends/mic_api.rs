//! The Xeon Phi in-band backend (SysMgmt over SCIF).

use crate::backend::{EnvBackend, FaultGate, Poll, ReadError};
use crate::reading::DataPoint;
use mic_sim::{PhiCard, ScifNetwork, Smc, SysMgmtSession, MIC_API_QUERY_COST};
use powermodel::{Metric, Platform, Support};
use simkit::fault::FaultPlan;
use simkit::wire::LinkSpec;
use simkit::{SimDuration, SimTime};
use std::sync::Arc;

/// MonEQ's in-band Phi backend. Expensive (≈14.2 ms per poll) and
/// perturbing (the card's power rises while queries run — Figure 7); the
/// card must have been built with
/// [`SysMgmtSession::mgmt_demand`] so the perturbation is physically
/// present in the power the SMC measures.
pub struct MicApiBackend {
    net: ScifNetwork,
    session: SysMgmtSession,
    card: Arc<PhiCard>,
    smc: Arc<Smc>,
    gate: FaultGate,
}

impl MicApiBackend {
    /// Connect to the SysMgmt agent of `card` (SCIF node 1).
    pub fn new(card: Arc<PhiCard>, smc: Arc<Smc>) -> Self {
        let mut net = ScifNetwork::new(2);
        SysMgmtSession::start_agent(&mut net, 1).expect("fresh fabric");
        let session = SysMgmtSession::connect(&mut net, 1).expect("agent listening");
        MicApiBackend {
            net,
            session,
            card,
            smc,
            gate: FaultGate::none(),
        }
    }

    /// Subject this backend to the run's fault plan under the Phi
    /// pathology profile ([`mic_sim::fault_profile`]: unresponsive on-card
    /// software, transient SCIF failures, empty generations). `label`
    /// names the device's fault stream; use a per-rank label so ranks fail
    /// independently.
    pub fn with_faults(mut self, plan: &FaultPlan, label: &str) -> Self {
        self.gate = FaultGate::from_plan(plan, label, mic_sim::fault_profile());
        self
    }

    /// The link personality an out-of-band deployment of this mechanism
    /// rides on. SysMgmt is in-band (host-to-card SCIF on the node
    /// itself); remote service relays through the host over the cluster
    /// interconnect — a LAN-class hop on top of the 14.2 ms query.
    pub fn service_link() -> LinkSpec {
        LinkSpec::lan()
    }
}

impl EnvBackend for MicApiBackend {
    fn name(&self) -> &'static str {
        "mic-sysmgmt"
    }

    fn platform(&self) -> Platform {
        mic_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        mic_sim::smc::SMC_SAMPLE_PERIOD
    }

    fn poll_cost(&self) -> SimDuration {
        MIC_API_QUERY_COST
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        mic_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        let grant = self.gate.admit(t)?;
        let (reading, _done) = self
            .session
            .query_power(&mut self.net, &self.card, &self.smc, t)
            .expect("established session");
        let point = DataPoint {
            timestamp: t,
            device: "mic0".into(),
            domain: "card".into(),
            watts: reading.total_power_uw as f64 / 1e6,
            volts: Some(reading.vccp_volts),
            amps: Some(reading.vccp_amps),
            temp_c: Some(reading.die_temp_c),
            stale: grant.glitch,
        };
        let (kept, missing) = self.gate.filter(t, vec![point]);
        Ok(Poll::with_missing(kept, missing))
    }

    fn read_cadence(&self) -> SimDuration {
        // The SMC resamples every 50 ms; in-band queries inside one window
        // are served from the same generation.
        mic_sim::smc::SMC_SAMPLE_PERIOD
    }

    fn replayable(&self) -> bool {
        // The reading is a pure function of the query instant (card and
        // SMC are deterministic models; SCIF sequence numbers never reach
        // the power value), so an un-faulted stored poll replays exactly.
        !self.gate.is_active()
    }

    fn records_per_poll(&self) -> usize {
        1
    }

    fn gate_stats(&self) -> Option<crate::backend::GateStats> {
        // An inactive gate never touches its counters; reporting `None`
        // instead of an all-zero ledger lets finalize skip the per-kind
        // fold entirely on the (default) fault-free path, with byte-for-
        // byte identical output either way.
        self.gate.is_active().then(|| self.gate.stats())
    }

    fn limitations(&self) -> Vec<crate::backend::StatedLimitation> {
        use crate::backend::StatedLimitation as L;
        vec![
            L::new(
                "cost",
                "each in-band query takes ~14.2 ms end to end (~14% overhead \
                 at a 100 ms interval)",
            ),
            L::new(
                "perturbation",
                "collection code runs on the card per query, raising the \
                 card's power over idle -- the readings include the cost of \
                 taking them",
            ),
            L::new(
                "deployment",
                "in-band over host-to-card SCIF; every query competes with \
                 the application for the card's cores and the PCIe link",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::Noop;
    use mic_sim::PhiSpec;
    use powermodel::DemandTrace;
    use simkit::NoiseStream;

    fn backend(mgmt: DemandTrace) -> MicApiBackend {
        let card = Arc::new(PhiCard::new(
            PhiSpec::default(),
            &Noop::figure7().profile(),
            mgmt,
            SimTime::from_secs(200),
        ));
        let smc = Arc::new(Smc::new(NoiseStream::new(44)));
        MicApiBackend::new(card, smc)
    }

    #[test]
    fn poll_reports_card_power_with_extras() {
        let mgmt = SysMgmtSession::mgmt_demand(
            SimDuration::from_millis(100),
            SimTime::ZERO,
            SimTime::from_secs(200),
        );
        let mut b = backend(mgmt);
        let points = b.poll(SimTime::from_secs(60));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!((108.0..122.0).contains(&p.watts), "watts {}", p.watts);
        assert!(p.temp_c.is_some() && p.volts.is_some() && p.amps.is_some());
    }

    #[test]
    fn in_band_polling_observes_its_own_perturbation() {
        // With the mgmt demand installed (API polling), measured power sits
        // above an otherwise-identical card polled without it.
        let mgmt = SysMgmtSession::mgmt_demand(
            SimDuration::from_millis(100),
            SimTime::ZERO,
            SimTime::from_secs(200),
        );
        let mut with = backend(mgmt);
        let mut without = backend(DemandTrace::zero());
        let mut diff_sum = 0.0;
        let n = 50;
        for k in 0..n {
            let t = SimTime::from_millis(30_000 + k * 500);
            diff_sum += with.poll(t)[0].watts - without.poll(t)[0].watts;
        }
        let mean_diff = diff_sum / n as f64;
        assert!(
            (1.0..4.0).contains(&mean_diff),
            "API perturbation {mean_diff} W"
        );
    }

    #[test]
    fn cost_is_the_papers_14_2ms() {
        let b = backend(DemandTrace::zero());
        assert_eq!(b.poll_cost(), SimDuration::from_micros(14_200));
        // ≈14% at a 100 ms interval.
        let frac = b.poll_cost().as_secs_f64() / 0.1;
        assert!((frac - 0.142).abs() < 1e-9);
    }
}
