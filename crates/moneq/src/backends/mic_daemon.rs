//! The Xeon Phi MICRAS-daemon backend (device-side pseudo-file reads).

use crate::backend::{EnvBackend, FaultGate, Poll, ReadError};
use crate::reading::DataPoint;
use hpc_workloads::WorkloadProfile;
use mic_sim::micras::{PowerFileReading, POWER_FILE, TEMP_FILE};
use mic_sim::{MicrasDaemon, PhiCard, Smc, MIC_DAEMON_QUERY_COST};
use powermodel::{Metric, Platform, Support};
use simkit::fault::FaultPlan;
use simkit::wire::LinkSpec;
use simkit::{SimDuration, SimTime};
use std::sync::Arc;

/// MonEQ's daemon-path Phi backend: read `/sys/class/micras/power`, parse,
/// record. Cheap (≈0.04 ms), but "the data collected by the daemon is only
/// accessible by the portion of code which is running on the device", so
/// the cost — small as it is — is charged to the application's own
/// timeline (contention), not to a host-side thread.
pub struct MicDaemonBackend {
    daemon: MicrasDaemon,
    card: Arc<PhiCard>,
    gate: FaultGate,
}

impl MicDaemonBackend {
    /// Start the daemon for `card` and attach.
    pub fn new(card: Arc<PhiCard>, smc: Arc<Smc>, profile: &WorkloadProfile) -> Self {
        let daemon = MicrasDaemon::start(card.clone(), smc, profile);
        MicDaemonBackend {
            daemon,
            card,
            gate: FaultGate::none(),
        }
    }

    /// Subject this backend to the run's fault plan under the Phi
    /// pathology profile ([`mic_sim::fault_profile`]: an unresponsive
    /// MICRAS daemon, transient pseudo-file read failures, empty
    /// generations). `label` names the device's fault stream; use a
    /// per-rank label so ranks fail independently.
    pub fn with_faults(mut self, plan: &FaultPlan, label: &str) -> Self {
        self.gate = FaultGate::from_plan(plan, label, mic_sim::fault_profile());
        self
    }

    /// The link personality an out-of-band deployment of this mechanism
    /// rides on. The MICRAS daemon's SMC data also surfaces on the
    /// management fabric (IPMB to the chassis controller), so the natural
    /// remote personality is a management-class link.
    pub fn service_link() -> LinkSpec {
        LinkSpec::mgmt()
    }

    /// Temperature read (a second pseudo-file; optional extra cost).
    pub fn read_die_temp(&self, t: SimTime) -> Option<f64> {
        let text = self.daemon.read_file(TEMP_FILE, t).ok()?;
        text.lines()
            .find(|l| l.starts_with("die:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
    }
}

impl EnvBackend for MicDaemonBackend {
    fn name(&self) -> &'static str {
        "mic-micras"
    }

    fn platform(&self) -> Platform {
        mic_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        mic_sim::smc::SMC_SAMPLE_PERIOD
    }

    fn poll_cost(&self) -> SimDuration {
        MIC_DAEMON_QUERY_COST
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        mic_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        let grant = self.gate.admit(t)?;
        let text = self
            .daemon
            .read_file(POWER_FILE, t)
            .expect("daemon running");
        let r = PowerFileReading::parse(&text).expect("well-formed pseudo-file");
        let _ = &self.card;
        let point = DataPoint {
            timestamp: t,
            device: "mic0".into(),
            domain: "card".into(),
            watts: r.total_watts(),
            volts: Some(r.vccp_uv as f64 / 1e6),
            amps: Some(r.vccp_ua as f64 / 1e6),
            temp_c: None,
            stale: grant.glitch,
        };
        let (kept, missing) = self.gate.filter(t, vec![point]);
        Ok(Poll::with_missing(kept, missing))
    }

    fn read_cadence(&self) -> SimDuration {
        // The pseudo-file is regenerated from the SMC's latest 50 ms
        // generation; reads inside one window parse identical text.
        mic_sim::smc::SMC_SAMPLE_PERIOD
    }

    fn replayable(&self) -> bool {
        // The parsed reading is a pure function of the query instant (the
        // daemon rerenders the file from the deterministic SMC state), so
        // an un-faulted stored poll replays exactly.
        !self.gate.is_active()
    }

    fn records_per_poll(&self) -> usize {
        1
    }

    fn gate_stats(&self) -> Option<crate::backend::GateStats> {
        // An inactive gate never touches its counters; reporting `None`
        // instead of an all-zero ledger lets finalize skip the per-kind
        // fold entirely on the (default) fault-free path, with byte-for-
        // byte identical output either way.
        self.gate.is_active().then(|| self.gate.stats())
    }

    fn limitations(&self) -> Vec<crate::backend::StatedLimitation> {
        use crate::backend::StatedLimitation as L;
        vec![
            L::new(
                "contention",
                "pseudo-files are only readable from code running on the \
                 device, so collection contends with the application",
            ),
            L::new(
                "staleness",
                "readings are the SMC's latest 50 ms generation, not a fresh \
                 sample",
            ),
            L::new(
                "deployment",
                "the same SMC generations are reachable out-of-band over the \
                 management fabric (IPMB), trading the on-device contention \
                 for management-network latency",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::Noop;
    use mic_sim::PhiSpec;
    use powermodel::DemandTrace;
    use simkit::NoiseStream;

    fn backend() -> MicDaemonBackend {
        let profile = Noop::figure7().profile();
        let card = Arc::new(PhiCard::new(
            PhiSpec::default(),
            &profile,
            DemandTrace::zero(),
            SimTime::from_secs(200),
        ));
        let smc = Arc::new(Smc::new(NoiseStream::new(55)));
        MicDaemonBackend::new(card, smc, &profile)
    }

    #[test]
    fn poll_parses_the_pseudo_file() {
        let mut b = backend();
        let points = b.poll(SimTime::from_secs(60));
        assert_eq!(points.len(), 1);
        assert!((105.0..120.0).contains(&points[0].watts));
        assert!(points[0].volts.is_some());
    }

    #[test]
    fn daemon_is_355x_cheaper_than_api() {
        let b = backend();
        assert_eq!(b.poll_cost(), SimDuration::from_micros(40));
        let ratio = mic_sim::MIC_API_QUERY_COST.as_nanos() as f64 / b.poll_cost().as_nanos() as f64;
        assert!((ratio - 355.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn die_temp_helper_reads_second_file() {
        let b = backend();
        let temp = b.read_die_temp(SimTime::from_secs(60)).unwrap();
        assert!((35.0..80.0).contains(&temp), "temp {temp}");
    }
}
