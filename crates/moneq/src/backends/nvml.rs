//! The NVML backend: board power + temperature per GPU.

use crate::backend::{EnvBackend, FaultGate, Poll, ReadError};
use crate::reading::DataPoint;
use nvml_sim::{Nvml, NVML_QUERY_COST};
use powermodel::{Metric, Platform, Support};
use simkit::fault::FaultPlan;
use simkit::wire::LinkSpec;
use simkit::{SimDuration, SimTime};
use std::sync::Arc;

/// MonEQ's NVML backend. "If a system has both a NVIDIA GPU as well as an
/// Intel Xeon Phi, profiling is possible for both of these devices at the
/// same time" — the session just attaches both backends; within this one,
/// every enumerated GPU is polled and reported individually.
pub struct NvmlBackend {
    nvml: Arc<Nvml>,
    /// Boards that returned `NotSupported` for power (pre-Kepler), skipped
    /// but counted.
    pub unsupported_devices: usize,
    /// When set, each poll drains the driver's per-60 ms sample ring
    /// (`nvmlDeviceGetSamples`) instead of taking one point reading, so a
    /// slow MonEQ interval still captures every hardware refresh.
    use_sample_buffer: bool,
    last_drained: SimTime,
    gate: FaultGate,
}

impl NvmlBackend {
    /// Attach to an initialized NVML library handle (point reads per poll).
    pub fn new(nvml: Arc<Nvml>) -> Self {
        NvmlBackend {
            nvml,
            unsupported_devices: 0,
            use_sample_buffer: false,
            last_drained: SimTime::ZERO,
            gate: FaultGate::none(),
        }
    }

    /// Attach in sample-buffer mode: polls drain the 60 ms ring.
    pub fn with_sample_buffer(nvml: Arc<Nvml>) -> Self {
        NvmlBackend {
            use_sample_buffer: true,
            ..Self::new(nvml)
        }
    }

    /// Subject this backend to the run's fault plan under the NVML
    /// pathology profile ([`nvml_sim::fault_profile`]: second-scale
    /// sampling blackouts, transient query failures). The blackout covers
    /// the whole driver, so every enumerated GPU goes dark together.
    /// `label` names the device's fault stream; use a per-rank label so
    /// ranks fail independently.
    pub fn with_faults(mut self, plan: &FaultPlan, label: &str) -> Self {
        self.gate = FaultGate::from_plan(plan, label, nvml_sim::fault_profile());
        self
    }

    /// The link personality an out-of-band deployment of this mechanism
    /// rides on. NVML is in-band (a library call crossing the node's own
    /// PCI bus), so remote service means a node-local daemon relaying
    /// over the cluster interconnect — the cuda-over-ip arrangement.
    pub fn service_link() -> LinkSpec {
        LinkSpec::lan()
    }
}

impl EnvBackend for NvmlBackend {
    fn name(&self) -> &'static str {
        "nvml"
    }

    fn platform(&self) -> Platform {
        nvml_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        // The power register refreshes about every 60 ms (§II-C).
        SimDuration::from_millis(60)
    }

    fn poll_cost(&self) -> SimDuration {
        NVML_QUERY_COST * self.nvml.device_count() as u64
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        nvml_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        // A blackout or transient failure skips the drain entirely;
        // `last_drained` then stays put, so the next successful poll
        // catches up on the ring samples the blackout skipped.
        let grant = self.gate.admit(t)?;
        let mut out = Vec::with_capacity(self.nvml.device_count());
        self.unsupported_devices = 0;
        for i in 0..self.nvml.device_count() {
            let dev = self.nvml.device_by_index(i).expect("index in range");
            if self.use_sample_buffer {
                match dev.power_samples(self.last_drained, t) {
                    Ok(samples) => {
                        for (at, mw) in samples {
                            out.push(DataPoint::power(
                                at,
                                &format!("gpu{i}"),
                                "board",
                                f64::from(mw) / 1_000.0,
                            ));
                        }
                    }
                    Err(_) => self.unsupported_devices += 1,
                }
                continue;
            }
            match dev.power_usage(t) {
                Ok(mw) => {
                    let temp = dev.temperature(t).ok().map(f64::from);
                    out.push(DataPoint {
                        timestamp: t,
                        device: format!("gpu{i}"),
                        domain: "board".into(),
                        watts: f64::from(mw) / 1_000.0,
                        volts: None,
                        amps: None,
                        temp_c: temp,
                        stale: false,
                    });
                }
                Err(_) => self.unsupported_devices += 1,
            }
        }
        if self.use_sample_buffer {
            self.last_drained = t;
        }
        if grant.glitch {
            for p in &mut out {
                p.stale = true;
            }
        }
        let (kept, missing) = self.gate.filter(t, out);
        Ok(Poll::with_missing(kept, missing))
    }

    fn read_cadence(&self) -> SimDuration {
        // The board power register refreshes ~every 60 ms (§II-C); point
        // reads inside one refresh window observe the same value.
        SimDuration::from_millis(60)
    }

    fn replayable(&self) -> bool {
        // Point reads are a pure function of the query instant; buffer
        // mode drains a ring relative to `last_drained` (polling-history
        // state), and an active fault gate draws per attempt — both rule
        // out replaying a stored poll.
        !self.use_sample_buffer && !self.gate.is_active()
    }

    fn records_per_poll(&self) -> usize {
        self.nvml.device_count()
    }

    fn gate_stats(&self) -> Option<crate::backend::GateStats> {
        // An inactive gate never touches its counters; reporting `None`
        // instead of an all-zero ledger lets finalize skip the per-kind
        // fold entirely on the (default) fault-free path, with byte-for-
        // byte identical output either way.
        self.gate.is_active().then(|| self.gate.stats())
    }

    fn limitations(&self) -> Vec<crate::backend::StatedLimitation> {
        use crate::backend::StatedLimitation as L;
        vec![
            L::new(
                "scope",
                "power is reported for the entire board including memory; \
                 there is no per-rail breakdown to request",
            ),
            L::new(
                "accuracy",
                "reported accuracy is +/-5 W, refreshed ~every 60 ms",
            ),
            L::new(
                "support",
                "only Kepler boards (K20/K40) expose power; older boards \
                 return NotSupported",
            ),
            L::new(
                "cost",
                "every query crosses the PCI bus: ~1.3 ms per call (1.3% at \
                 a 100 ms interval)",
            ),
            L::new(
                "deployment",
                "in-band via the host driver; off-node access (nvml over ip) \
                 adds a network round-trip per query on top of the PCI cost",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::{Noop, VectorAdd};
    use nvml_sim::{DeviceConfig, GpuSpec};

    fn nvml_two_boards() -> Arc<Nvml> {
        Arc::new(Nvml::init(
            &[
                DeviceConfig {
                    spec: GpuSpec::k20(),
                    workload: VectorAdd::figure5().profile(),
                    horizon: SimTime::from_secs(150),
                },
                DeviceConfig {
                    spec: GpuSpec::m2090(),
                    workload: Noop::figure4().profile(),
                    horizon: SimTime::from_secs(150),
                },
            ],
            9,
        ))
    }

    #[test]
    fn polls_each_board_and_skips_pre_kepler() {
        let mut b = NvmlBackend::new(nvml_two_boards());
        let points = b.poll(SimTime::from_secs(60));
        assert_eq!(points.len(), 1, "only the Kepler board reports power");
        assert_eq!(b.unsupported_devices, 1);
        assert_eq!(points[0].device, "gpu0");
        assert!(points[0].temp_c.is_some());
        assert!((100.0..160.0).contains(&points[0].watts));
    }

    #[test]
    fn sample_buffer_mode_captures_every_refresh() {
        let nvml = Arc::new(Nvml::init(
            &[DeviceConfig {
                spec: GpuSpec::k20(),
                workload: Noop::figure7().profile(),
                horizon: SimTime::from_secs(150),
            }],
            9,
        ));
        // Point mode at a 1 s interval: 1 record per poll.
        let mut point = NvmlBackend::new(nvml.clone());
        assert_eq!(point.poll(SimTime::from_secs(1)).len(), 1);
        // Buffer mode at the same interval: ~16-17 records per poll.
        let mut buffered = NvmlBackend::with_sample_buffer(nvml);
        let first = buffered.poll(SimTime::from_secs(1));
        assert!(first.len() > 10, "{}", first.len());
        let second = buffered.poll(SimTime::from_secs(2));
        assert!((15..=18).contains(&second.len()), "{}", second.len());
        // No duplicate timestamps across consecutive drains.
        let last_of_first = first.last().unwrap().timestamp;
        assert!(second.iter().all(|p| p.timestamp > last_of_first));
    }

    #[test]
    fn poll_cost_scales_with_device_count() {
        let b = NvmlBackend::new(nvml_two_boards());
        assert_eq!(b.poll_cost(), SimDuration::from_micros(2_600));
    }
}
