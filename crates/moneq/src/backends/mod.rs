//! The six backend adapters — one per access mechanism: the paper's five,
//! plus the POWER9 OCC the harness was extended with.
//!
//! | Backend | Mechanism | Min interval | Per-poll cost |
//! |---|---|---|---|
//! | [`BgqBackend`] | EMON API, node-card scope | 560 ms | 1.10 ms |
//! | [`RaplBackend`] | MSR driver, 4 domains | 60 ms | 4 × 0.03 ms |
//! | [`NvmlBackend`] | NVML over PCIe | 60 ms | 1.3 ms per GPU |
//! | [`MicApiBackend`] | Phi in-band SysMgmt/SCIF | 50 ms | 14.2 ms |
//! | [`MicDaemonBackend`] | Phi MICRAS pseudo-files | 50 ms | 0.04 ms |
//! | [`OccBackend`] | POWER9 OCC buffers via OPAL | 25 ms | 0.02 ms |

mod bgq;
mod mic_api;
mod mic_daemon;
mod nvml;
mod occ;
mod rapl;

pub use bgq::BgqBackend;
pub use mic_api::MicApiBackend;
pub use mic_daemon::MicDaemonBackend;
pub use nvml::NvmlBackend;
pub use occ::OccBackend;
pub use rapl::RaplBackend;
