//! The Blue Gene/Q backend: EMON at node-card granularity.

use crate::backend::{EnvBackend, FaultGate, Poll, ReadError};
use crate::reading::DataPoint;
use bgq_sim::{BgqMachine, DomainReading, EmonApi, EMON_QUERY_COST};
use powermodel::{Metric, Platform, Support};
use simkit::fault::FaultPlan;
use simkit::wire::LinkSpec;
use simkit::{SimDuration, SimTime};
use std::sync::Arc;

/// MonEQ's BG/Q backend: "read the individual voltage and current data
/// points for each of the 7 BG/Q domains" through EMON, for the node card
/// hosting this agent rank.
pub struct BgqBackend {
    machine: Arc<BgqMachine>,
    api: EmonApi,
    gate: FaultGate,
}

impl BgqBackend {
    /// Attach to the node card at `board_index` of `machine`.
    pub fn new(machine: Arc<BgqMachine>, board_index: usize) -> Self {
        BgqBackend {
            machine,
            api: EmonApi::open(board_index),
            gate: FaultGate::none(),
        }
    }

    /// Subject this backend to the run's fault plan under the BG/Q
    /// pathology profile ([`bgq_sim::fault_profile`]: late-committed
    /// generations, missing envdb rows). `label` names the device's fault
    /// stream; use a per-rank label so ranks fail independently.
    pub fn with_faults(mut self, plan: &FaultPlan, label: &str) -> Self {
        self.gate = FaultGate::from_plan(plan, label, bgq_sim::fault_profile());
        self
    }

    /// The node card this backend reads (the 32-node granularity).
    pub fn board_index(&self) -> usize {
        self.api.board_index()
    }

    /// The link personality an out-of-band deployment of this mechanism
    /// rides on. On a real BG/Q the environmental data flows over the
    /// service network into the environmental database — a management-
    /// class hop, not a node-local call.
    pub fn service_link() -> LinkSpec {
        LinkSpec::mgmt()
    }
}

impl EnvBackend for BgqBackend {
    fn name(&self) -> &'static str {
        "bgq-emon"
    }

    fn platform(&self) -> Platform {
        bgq_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        bgq_sim::emon::EMON_GENERATION_PERIOD
    }

    fn poll_cost(&self) -> SimDuration {
        EMON_QUERY_COST
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        bgq_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        let grant = self.gate.admit(t)?;
        let mut points: Vec<DataPoint> = self
            .api
            .read_domains(&self.machine, t)
            .iter()
            .map(|r: &DomainReading| DataPoint {
                timestamp: t,
                device: "nodecard".into(),
                domain: r.domain.label().into(),
                watts: r.watts(),
                volts: Some(r.volts),
                amps: Some(r.amps),
                temp_c: None,
                stale: false,
            })
            .collect();
        if grant.glitch {
            for p in &mut points {
                p.stale = true;
            }
        }
        // Missing envdb rows: individual domain records silently lost.
        let (kept, missing) = self.gate.filter(t, points);
        Ok(Poll::with_missing(kept, missing))
    }

    fn read_cadence(&self) -> SimDuration {
        // EMON serves whole 560 ms generations; queries inside one
        // generation window observe identical domain readings.
        bgq_sim::emon::EMON_GENERATION_PERIOD
    }

    fn replayable(&self) -> bool {
        // EMON readings are a pure function of the generation the query
        // falls in (per-generation stable noise, no polling-history
        // state), so a stored poll replays exactly — unless a fault gate
        // is active, whose per-attempt draws must not be skipped.
        !self.gate.is_active()
    }

    fn records_per_poll(&self) -> usize {
        7
    }

    fn gate_stats(&self) -> Option<crate::backend::GateStats> {
        // An inactive gate never touches its counters; reporting `None`
        // instead of an all-zero ledger lets finalize skip the per-kind
        // fold entirely on the (default) fault-free path, with byte-for-
        // byte identical output either way.
        self.gate.is_active().then(|| self.gate.stats())
    }

    fn limitations(&self) -> Vec<crate::backend::StatedLimitation> {
        use crate::backend::StatedLimitation as L;
        vec![
            L::new(
                "granularity",
                "data is per node card (32 nodes); per-node attribution is \
                 impossible by design and cannot be overcome in software",
            ),
            L::new(
                "staleness",
                "EMON serves the oldest completed 560 ms generation; a query \
                 never sees the current generation",
            ),
            L::new(
                "consistency",
                "the seven domains are not sampled at the same instant; a \
                 phase change inside a generation lands in some domains only",
            ),
            L::new("cost", "each query costs ~1.10 ms (0.19% at 560 ms)"),
            L::new(
                "deployment",
                "in-band EMON queries run on the node card itself; the \
                 environmental database copy arrives out-of-band over the \
                 service network and lags by minutes",
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_sim::BgqConfig;
    use hpc_workloads::Mmps;

    #[test]
    fn polls_seven_domains_with_v_and_a() {
        let mut machine = BgqMachine::new(BgqConfig::default(), 7);
        machine.assign_job(&[0], &Mmps::figure1().profile());
        let mut b = BgqBackend::new(Arc::new(machine), 0);
        let points = b.poll(SimTime::from_secs(100));
        assert_eq!(points.len(), 7);
        for p in &points {
            assert_eq!(p.device, "nodecard");
            assert!(p.volts.is_some() && p.amps.is_some());
            let implied = p.volts.unwrap() * p.amps.unwrap();
            assert!((implied - p.watts).abs() < 1e-9);
        }
        let total: f64 = points.iter().map(|p| p.watts).sum();
        assert!(
            (1_400.0..1_800.0).contains(&total),
            "MMPS card total {total}"
        );
    }

    #[test]
    fn costs_match_paper() {
        let machine = Arc::new(BgqMachine::new(BgqConfig::default(), 7));
        let b = BgqBackend::new(machine, 0);
        assert_eq!(b.poll_cost(), SimDuration::from_micros(1_100));
        assert_eq!(b.min_interval(), SimDuration::from_millis(560));
        // 0.19% overhead at the default interval (§II-A).
        let frac = b.poll_cost().as_secs_f64() / b.min_interval().as_secs_f64();
        assert!((frac - 0.00196).abs() < 2e-4);
    }
}
