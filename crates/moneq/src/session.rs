//! The profiling session: Listing 1's `MonEQ_Initialize` … `MonEQ_Finalize`.
//!
//! A session belongs to one agent rank — "an array local to the finest
//! granularity possible on the system. For example, on a BG/Q, this is the
//! local agent rank on a node card, but for other systems this could be a
//! single node. If a node has several accelerators installed locally, each
//! of these is accounted for individually within the file produced for the
//! node." (§III)
//!
//! ## Degradation semantics
//!
//! Backends can fail ([`EnvBackend::read`] returns a typed
//! [`crate::backend::ReadError`]); the session reacts per DESIGN.md §8:
//! retryable errors get bounded retries with exponential backoff, timeout
//! stalls are charged (capped) to the fault-recovery ledger, a poll that
//! fails outright is served from the device's last good value (flagged
//! stale) or marked missed, and a device that fails
//! [`crate::backend::RetryPolicy::disable_after`] consecutive polls is
//! disabled for the rest of the run. Every outcome is accounted in the
//! per-device [`Completeness`] report.

use crate::backend::{validate_interval, EnvBackend, Poll, ReadError, RetryPolicy};
use crate::completeness::Completeness;
use crate::control::ControlHook;
use crate::output::OutputFile;
use crate::overhead::{finalize_time, init_time, OverheadReport, IO_STRIPE_WIDTH};
use crate::plan::{SharedLookup, SharedRead, SharedReadCache};
use crate::records::Records;
use crate::remote::{null_backend, RemoteBackend};
use crate::tags::{TagEvent, TagKind};
use simkit::wire::LinkSpec;
use simkit::{CounterId, HistogramId, SamplingPolicy, SimDuration, SimTime, SpanId, Telemetry};
use std::sync::Arc;

/// Session configuration.
///
/// ```
/// use moneq::{MonEqConfig, RetryPolicy};
/// use simkit::SimDuration;
///
/// // Defaults follow the paper: lowest valid interval, a "reasonably
/// // large" preallocated array, and a bounded-retry degradation policy.
/// let config = MonEqConfig {
///     interval: Some(SimDuration::from_millis(560)),
///     agent_name: "R00-M0-N04".into(),
///     retry: RetryPolicy {
///         max_retries: 3,
///         ..RetryPolicy::default()
///     },
///     ..MonEqConfig::default()
/// };
/// assert_eq!(config.max_samples, 1 << 20);
/// assert_eq!(config.retry.max_retries, 3);
/// ```
#[derive(Clone, Debug)]
pub struct MonEqConfig {
    /// Polling interval; `None` = "the lowest polling interval possible for
    /// the given hardware" (the slowest backend minimum when several
    /// backends are attached, so every poll has fresh data everywhere).
    pub interval: Option<SimDuration>,
    /// Preallocated record-array capacity ("allocated to a reasonably large
    /// number"; records beyond it are dropped and counted).
    pub max_samples: usize,
    /// Agent name written into the output header.
    pub agent_name: String,
    /// Number of agent ranks in the whole run (drives the collective init/
    /// finalize cost model; 1 for single-node profiling).
    pub total_agents: usize,
    /// How the session reacts to backend read failures.
    pub retry: RetryPolicy,
    /// Record telemetry (counters / histograms / spans) for this session.
    /// Off by default: a disabled registry costs one branch per event and
    /// allocates nothing, so existing runs are bit-for-bit unchanged.
    pub telemetry: bool,
    /// When the session polls, relative to its nominal interval grid.
    /// The default ([`SamplingPolicy::Aligned`]) computes every fire time
    /// with the exact arithmetic of builds that predate the knob, so
    /// default runs stay byte-identical; the other policies shift poll
    /// *times* only and compose with the retry, telemetry, and
    /// collection-plan layers unchanged. The session's rank keys the
    /// policy's random draws, so cluster ranks decorrelate automatically.
    pub sampling: SamplingPolicy,
}

impl Default for MonEqConfig {
    fn default() -> Self {
        MonEqConfig {
            interval: None,
            max_samples: 1 << 20,
            agent_name: "node0".into(),
            total_agents: 1,
            retry: RetryPolicy::default(),
            telemetry: false,
            sampling: SamplingPolicy::default(),
        }
    }
}

/// Session lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Running,
    Finalized,
}

/// What finalize returns.
#[derive(Clone, Debug)]
pub struct FinalizeResult {
    /// The rendered per-node output file.
    pub file: OutputFile,
    /// The overhead ledger (one Table III column).
    pub overhead: OverheadReport,
    /// Records dropped because the preallocated array filled up.
    pub dropped_records: u64,
    /// Per-backend completeness counters (always populated; written into
    /// the output file only when some device was degraded).
    pub completeness: Vec<Completeness>,
    /// The session's telemetry registry shard, moved out whole at finalize
    /// (a pointer move — no string-keyed report is materialized on the
    /// finalize path). Empty unless [`MonEqConfig::telemetry`] was set.
    /// Snapshot it with [`Telemetry::report`] when a mergeable
    /// [`simkit::TelemetryReport`] is wanted; derived exclusively from the virtual
    /// timeline, so serial and parallel drives of the same seed produce
    /// identical shards.
    pub telemetry: Telemetry,
}

/// Pre-interned IDs for the session-level telemetry vocabulary, resolved
/// once at initialize so the poll hot path never constructs or looks up a
/// metric name (see `simkit::telemetry`). On a disabled registry every ID
/// is a dummy whose operations no-op.
#[derive(Clone, Copy, Default)]
struct SessionIds {
    polls_fired: CounterId,
    polls_scheduled: CounterId,
    polls_missed: CounterId,
    polls_succeeded: CounterId,
    polls_retried: CounterId,
    polls_stale_substituted: CounterId,
    devices_disabled: CounterId,
    records_fresh: CounterId,
    records_stale: CounterId,
    records_lost: CounterId,
    records_dropped: CounterId,
    faults_transient: CounterId,
    faults_timeout: CounterId,
    faults_no_data: CounterId,
    faults_unavailable: CounterId,
    /// Interned at setup even though it is only counted once, at finalize:
    /// a string-keyed `count` there would intern a brand-new name per
    /// session — map insert, string allocations, and a capacity growth of
    /// all three counter arrays — inside the timed finalize path.
    finalize_waves: CounterId,
    retry_backoff: HistogramId,
    session_span: SpanId,
    poll_span: SpanId,
}

impl SessionIds {
    fn intern(t: &mut Telemetry) -> Self {
        // Disabled registries no-op on any ID, so skip the nineteen
        // cross-crate intern calls — at 49k sessions per cluster launch
        // they are a visible slice of wall clock for no effect.
        if !t.is_enabled() {
            return SessionIds::default();
        }
        SessionIds {
            polls_fired: t.intern_counter("polls.fired"),
            polls_scheduled: t.intern_counter("polls.scheduled"),
            polls_missed: t.intern_counter("polls.missed"),
            polls_succeeded: t.intern_counter("polls.succeeded"),
            polls_retried: t.intern_counter("polls.retried"),
            polls_stale_substituted: t.intern_counter("polls.stale_substituted"),
            devices_disabled: t.intern_counter("devices.disabled"),
            records_fresh: t.intern_counter("records.fresh"),
            records_stale: t.intern_counter("records.stale"),
            records_lost: t.intern_counter("records.lost"),
            records_dropped: t.intern_counter("records.dropped"),
            faults_transient: t.intern_counter("faults.transient"),
            faults_timeout: t.intern_counter("faults.timeout"),
            faults_no_data: t.intern_counter("faults.no_data"),
            faults_unavailable: t.intern_counter("faults.unavailable"),
            finalize_waves: t.intern_counter("finalize.waves"),
            retry_backoff: t.intern_histogram("retry_backoff"),
            session_span: t.intern_span("session"),
            poll_span: t.intern_span("poll"),
        }
    }
}

/// Pre-interned IDs for one backend's per-mechanism metrics. The
/// `format!`s here run once per slot at initialize (and only when
/// telemetry is enabled) instead of once per poll.
#[derive(Clone, Copy, Default)]
struct SlotIds {
    poll_span: SpanId,
    query_latency: HistogramId,
    cache_hit: CounterId,
    cache_bypass: CounterId,
    cache_miss: CounterId,
}

impl SlotIds {
    fn intern(t: &mut Telemetry, name: &str) -> Self {
        if !t.is_enabled() {
            return SlotIds::default();
        }
        SlotIds {
            poll_span: t.intern_span(&format!("poll/{name}")),
            query_latency: t.intern_histogram(&format!("query_latency/{name}")),
            cache_hit: t.intern_counter(&format!("cache.hit/{name}")),
            cache_bypass: t.intern_counter(&format!("cache.bypass/{name}")),
            cache_miss: t.intern_counter(&format!("cache.miss/{name}")),
        }
    }
}

/// One attached backend plus its degradation state.
struct Slot {
    backend: Box<dyn EnvBackend>,
    /// Pre-interned per-mechanism telemetry IDs.
    ids: SlotIds,
    /// Indices into the session's record array of the most recent poll's
    /// fresh records — the substitution source when a later poll fails
    /// outright. Indices, not clones: the array is append-only, so they
    /// stay valid, and the clean path never copies a record. (A fresh
    /// record dropped for capacity is not indexed; once the array is full
    /// substitutes would be dropped anyway.)
    last_good: Vec<usize>,
    consecutive_failures: u32,
    disabled: bool,
    comp: Completeness,
}

/// An active profiling session.
pub struct MonEq {
    rank: u32,
    slots: Vec<Slot>,
    config: MonEqConfig,
    interval: SimDuration,
    data: Records,
    /// Reusable index scratch for the poll path's fresh-record list; swaps
    /// with `Slot::last_good` so steady-state polls allocate nothing.
    scratch_fresh: Vec<usize>,
    tags: Vec<TagEvent>,
    dropped: u64,
    /// SIGALRM-style timer: nominal due time of the next poll. MonEQ's
    /// real timer is one `SIGALRM` registration per session, so the event
    /// queue degenerates to a single armed deadline — stored inline, which
    /// keeps a heap allocation per session out of the cluster launch path.
    next_fire: SimTime,
    started_at: SimTime,
    init_cost: SimDuration,
    collection_cost: SimDuration,
    fault_recovery: SimDuration,
    polls: u64,
    retries: u64,
    /// Nominal time of poll index 0 — the fixed point the sampling policy
    /// measures offsets from (grid policies never accumulate drift).
    sampling_anchor: SimTime,
    telemetry: Telemetry,
    /// Pre-interned session-level telemetry IDs.
    ids: SessionIds,
    /// The sharing domain's read cache, when a collection plan is active
    /// ([`MonEq::attach_shared_cache`]). `None` (the default) keeps the
    /// poll path bit-identical to builds that predate the planner.
    shared_cache: Option<Arc<SharedReadCache>>,
    /// The session's control hook, when a closed-loop scenario attached
    /// one ([`MonEq::attach_control`]). `None` (the default) keeps the
    /// fire loop bit-identical to builds that predate the hook.
    control: Option<Box<dyn ControlHook>>,
    state: State,
}

impl MonEq {
    /// `MonEQ_Initialize`: set up the record array and register the
    /// SIGALRM-style timer. Charges the Table III initialization cost and
    /// schedules the first poll one interval after `now`.
    ///
    /// Panics if a requested interval is below any backend's minimum, or if
    /// no backends are given — both programming errors in the caller.
    pub fn initialize(
        rank: u32,
        backends: Vec<Box<dyn EnvBackend>>,
        config: MonEqConfig,
        now: SimTime,
    ) -> Self {
        Self::initialize_from(rank, backends.into_iter(), config, now)
    }

    /// [`MonEq::initialize`] over any exact-size backend iterator. This is
    /// what [`crate::ClusterRun`] launches through — `iter::once(backend)`
    /// skips the intermediate one-element `Vec` per rank, which is a
    /// measurable slice of launch time at 49k sessions.
    pub(crate) fn initialize_from(
        rank: u32,
        backends: impl ExactSizeIterator<Item = Box<dyn EnvBackend>>,
        config: MonEqConfig,
        now: SimTime,
    ) -> Self {
        assert!(backends.len() > 0, "at least one backend required");
        let mut telemetry = Telemetry::with(config.telemetry);
        let ids = SessionIds::intern(&mut telemetry);
        let slots: Vec<Slot> = backends
            .map(|backend| {
                let comp = Completeness::new(backend.name());
                let ids = SlotIds::intern(&mut telemetry, backend.name());
                Slot {
                    backend,
                    ids,
                    last_good: Vec::new(),
                    consecutive_failures: 0,
                    disabled: false,
                    comp,
                }
            })
            .collect();
        let interval = match config.interval {
            Some(req) => {
                for s in &slots {
                    validate_interval(s.backend.as_ref(), req)
                        .unwrap_or_else(|e| panic!("invalid interval: {e}"));
                }
                req
            }
            None => slots
                .iter()
                .map(|s| s.backend.min_interval())
                .max()
                .expect("non-empty backends"),
        };
        let init_cost = init_time(config.total_agents.max(1));
        config.sampling.validate(interval);
        // The anchor is the historical first-fire time; the policy places
        // the actual first poll relative to it (Aligned: exactly on it,
        // via the same `now + init_cost + interval` arithmetic).
        let sampling_anchor = now + init_cost + interval;
        let first = config
            .sampling
            .first_fire(sampling_anchor, interval, u64::from(rank));
        telemetry.span_enter_id(ids.session_span, now);
        MonEq {
            rank,
            slots,
            telemetry,
            ids,
            // No up-front reservation: records live in columnar arenas
            // (`Records`), so growth is amortized per column and launching
            // tens of thousands of ranks in one process commits no
            // per-rank record heap at all (an eager reservation times a
            // 49k-rank run was most of the old 95 ms cluster launch cost).
            data: Records::new(),
            scratch_fresh: Vec::new(),
            tags: Vec::new(),
            dropped: 0,
            next_fire: first,
            started_at: now,
            init_cost,
            collection_cost: SimDuration::ZERO,
            fault_recovery: SimDuration::ZERO,
            polls: 0,
            retries: 0,
            sampling_anchor,
            shared_cache: None,
            control: None,
            interval,
            config,
            state: State::Running,
        }
    }

    /// Attach the sharing domain's read cache (the cluster does this when
    /// a [`crate::CollectionPlan`] is active). Polls then consult the
    /// cache before charging the access path: the first rank to reach a
    /// generation reads live and publishes; co-resident ranks get the
    /// generation at zero marginal cost. Must be attached before any poll
    /// fires, or early generations are simply all misses.
    pub fn attach_shared_cache(&mut self, cache: Arc<SharedReadCache>) {
        self.shared_cache = Some(cache);
    }

    /// Serve every attached mechanism over a simulated link: each slot's
    /// backend is wrapped in a [`RemoteBackend`] on `link`, with the
    /// link's noise streams salted by this session's rank so each rank
    /// gets independent weather from one shared [`LinkSpec`]. The cluster
    /// calls this when the collection plan says
    /// [`Deployment::Remote`](crate::plan::Deployment::Remote); call it
    /// before any poll fires.
    pub fn deploy_remote(&mut self, link: LinkSpec) {
        for slot in &mut self.slots {
            let inner = std::mem::replace(&mut slot.backend, null_backend());
            slot.backend = Box::new(RemoteBackend::connect_salted(
                inner,
                link,
                u64::from(self.rank),
            ));
        }
    }

    /// Attach a control hook: after every timer fire, the hook sees the
    /// records that fire appended and may actuate the plant it holds.
    /// Attach before any poll fires so the controller sees the whole run.
    pub fn attach_control(&mut self, hook: Box<dyn ControlHook>) {
        self.control = Some(hook);
    }

    /// The effective polling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The agent rank this session belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of records collected so far.
    pub fn records(&self) -> usize {
        self.data.len()
    }

    /// The records collected so far, zero-copy.
    ///
    /// This is the monitoring daemon's ingest hook: records are append-only
    /// until [`MonEq::finalize`], so an incremental consumer keeps a cursor
    /// of how many it has seen and reads only the tail after each
    /// [`MonEq::run_until`] step.
    pub fn collected(&self) -> &Records {
        &self.data
    }

    /// The agent name records are filed under (`MonEqConfig::agent_name`).
    pub fn agent_name(&self) -> &str {
        &self.config.agent_name
    }

    /// A point-in-time copy of every device's completeness ledger, in
    /// backend order — the same counters [`MonEq::finalize`] returns, but
    /// readable mid-run so a staleness endpoint can answer while the
    /// session is still collecting.
    pub fn completeness_so_far(&self) -> Vec<Completeness> {
        self.slots.iter().map(|s| s.comp.clone()).collect()
    }

    /// Drive the timer up to `until` (the application calls this as virtual
    /// time passes; each fire polls every backend and charges its cost).
    pub fn run_until(&mut self, until: SimTime) {
        assert_eq!(self.state, State::Running, "session already finalized");
        // Same boundary as `EventQueue::pop_until`: a deadline exactly at
        // `until` fires. `next_fire` always advances (policies fire strictly
        // later), so the loop terminates.
        while self.next_fire <= until {
            let t = self.next_fire;
            let new_from = self.data.len();
            if self.telemetry.is_enabled() {
                self.telemetry.count_id(self.ids.polls_fired, 1);
                self.telemetry.span_enter_id(self.ids.poll_span, t);
                let before = self.collection_cost + self.fault_recovery;
                for i in 0..self.slots.len() {
                    self.poll_slot_instrumented(i, t);
                }
                let spent = (self.collection_cost + self.fault_recovery) - before;
                self.telemetry.span_exit(t + spent);
            } else {
                for i in 0..self.slots.len() {
                    self.poll_slot(i, t);
                }
            }
            // The control hook fires after every backend polled, on the
            // same timeline — a `None` hook is one untaken branch.
            if let Some(hook) = self.control.as_mut() {
                hook.after_poll(t, &self.data, new_from);
            }
            self.polls += 1;
            // `polls` is the index of the poll being scheduled; Aligned
            // reduces to the historical `t + interval`.
            let next = self.config.sampling.next_fire(
                self.sampling_anchor,
                self.interval,
                t,
                self.polls,
                u64::from(self.rank),
            );
            self.next_fire = next;
        }
    }

    /// [`MonEq::poll_slot`] wrapped in per-backend telemetry: a
    /// `poll/{backend}` span plus a `query_latency/{backend}` histogram
    /// sample covering the poll cost and any fault-recovery time this poll
    /// charged — all simulated time, so the sample is identical however
    /// the session is scheduled. Disabled devices record nothing (their
    /// polls do no mechanism work).
    fn poll_slot_instrumented(&mut self, i: usize, t: SimTime) {
        if self.slots[i].disabled {
            self.poll_slot(i, t);
            return;
        }
        let sids = self.slots[i].ids;
        self.telemetry.span_enter_id(sids.poll_span, t);
        let before = self.collection_cost + self.fault_recovery;
        self.poll_slot(i, t);
        let spent = (self.collection_cost + self.fault_recovery) - before;
        self.telemetry.span_exit(t + spent);
        self.telemetry.record_id(sids.query_latency, spent);
    }

    /// One backend's share of one timer fire: read with bounded retry,
    /// then record, substitute, or mark missed.
    fn poll_slot(&mut self, i: usize, t: SimTime) {
        let policy = self.config.retry;
        let ids = self.ids;
        let slot = &mut self.slots[i];
        let sids = slot.ids;
        slot.comp.scheduled += 1;
        self.telemetry.count_id(ids.polls_scheduled, 1);
        if slot.disabled {
            slot.comp.missed_polls += 1;
            slot.comp.records_lost += slot.backend.records_per_poll() as u64;
            self.telemetry.count_id(ids.polls_missed, 1);
            self.telemetry
                .count_id(ids.records_lost, slot.backend.records_per_poll() as u64);
            return;
        }
        // Collection-plan consult: when a sharing domain's cache is
        // attached, ask whether this generation was already fetched by
        // the domain's leader. A hit skips the access-path charge (and,
        // for replayable backends at the same instant, the read itself);
        // a failure marker forces a full-cost local read — faults are
        // never papered over by a sibling's cached value.
        let name = slot.backend.name();
        let mut charged = true;
        let mut leader = false;
        let mut replay: Option<Poll> = None;
        if let Some(cache) = &self.shared_cache {
            match cache.consult(name, slot.backend.read_cadence(), t) {
                SharedLookup::Hit(read) => {
                    charged = false;
                    if slot.backend.replayable() && read.at == t {
                        replay = read.poll;
                    }
                    self.telemetry.count_id(sids.cache_hit, 1);
                }
                SharedLookup::Failed => {
                    self.telemetry.count_id(sids.cache_bypass, 1);
                }
                SharedLookup::Miss => {
                    leader = true;
                    self.telemetry.count_id(sids.cache_miss, 1);
                }
            }
        }
        let mut attempt = 0u32;
        let outcome = loop {
            if let Some(poll) = replay.take() {
                break Ok(poll);
            }
            match slot.backend.read(t) {
                Ok(poll) => break Ok(poll),
                Err(e) => {
                    self.telemetry.count_id(
                        match &e {
                            ReadError::Transient(_) => ids.faults_transient,
                            ReadError::Timeout { .. } => ids.faults_timeout,
                            ReadError::NoData => ids.faults_no_data,
                            ReadError::Unavailable(_) => ids.faults_unavailable,
                        },
                        1,
                    );
                    if let ReadError::Timeout { stalled } = &e {
                        self.fault_recovery += (*stalled).min(policy.timeout);
                    }
                    if e.is_retryable() && attempt < policy.max_retries {
                        attempt += 1;
                        self.retries += 1;
                        slot.comp.retried += 1;
                        // Exponential backoff before retry n: base << (n-1).
                        let backoff = policy.base_backoff.saturating_mul(1u64 << (attempt - 1));
                        self.fault_recovery += backoff;
                        self.telemetry.count_id(ids.polls_retried, 1);
                        self.telemetry.record_id(ids.retry_backoff, backoff);
                        continue;
                    }
                    break Err(e);
                }
            }
        };
        // Charge the access path once per poll, after the outcome settles:
        // for local mechanisms `last_poll_cost` is the static `poll_cost`
        // (so charging before or after the read is equivalent); for remote
        // ones it is the measured round-trip of the poll that just ran,
        // which only exists now. Failed polls still charge — the access
        // path was crossed even when the mechanism served nothing — except
        // when the wire itself never completed an exchange, in which case
        // the whole loss is the stall already charged to fault recovery.
        if charged {
            self.collection_cost += slot.backend.last_poll_cost();
        }
        // The generation's leader publishes its outcome so co-resident
        // ranks share the fetch. Values are stored only for replayable
        // backends; otherwise a cost-only marker is published and
        // followers recompute locally (deterministically identical).
        if leader {
            if let Some(cache) = &self.shared_cache {
                let cadence = slot.backend.read_cadence();
                match &outcome {
                    Ok(poll) => {
                        let stored = slot.backend.replayable().then(|| poll.clone());
                        cache.publish(
                            name,
                            cadence,
                            t,
                            SharedRead {
                                at: t,
                                poll: stored,
                            },
                        );
                    }
                    Err(_) => cache.publish_failure(name, cadence, t),
                }
            }
        }
        match outcome {
            Ok(poll) => {
                slot.consecutive_failures = 0;
                slot.comp.succeeded += 1;
                slot.comp.records_lost += u64::from(poll.missing);
                self.telemetry.count_id(ids.polls_succeeded, 1);
                self.telemetry
                    .count_id(ids.records_lost, u64::from(poll.missing));
                // The fresh-index list reuses a session-level scratch
                // buffer (and, below, swaps with the slot's previous list)
                // so the steady-state poll allocates nothing.
                let mut fresh = std::mem::take(&mut self.scratch_fresh);
                fresh.clear();
                for p in poll.points {
                    // Only genuinely fresh readings may serve as
                    // substitution material later; a glitched
                    // (stale-flagged) sample must not resurface as
                    // "last good".
                    if p.stale {
                        slot.comp.records_stale += 1;
                        self.telemetry.count_id(ids.records_stale, 1);
                    } else {
                        slot.comp.records_fresh += 1;
                        self.telemetry.count_id(ids.records_fresh, 1);
                        if self.data.len() < self.config.max_samples {
                            fresh.push(self.data.len());
                        }
                    }
                    if self.data.len() < self.config.max_samples {
                        self.data.push(p);
                    } else {
                        self.dropped += 1;
                        self.telemetry.count_id(ids.records_dropped, 1);
                    }
                }
                if fresh.is_empty() {
                    self.scratch_fresh = fresh;
                } else {
                    self.scratch_fresh = std::mem::replace(&mut slot.last_good, fresh);
                }
            }
            Err(_) => {
                slot.consecutive_failures += 1;
                if slot.last_good.is_empty() {
                    slot.comp.missed_polls += 1;
                    slot.comp.records_lost += slot.backend.records_per_poll() as u64;
                    self.telemetry.count_id(ids.polls_missed, 1);
                    self.telemetry
                        .count_id(ids.records_lost, slot.backend.records_per_poll() as u64);
                } else {
                    slot.comp.stale_polls += 1;
                    self.telemetry.count_id(ids.polls_stale_substituted, 1);
                    for k in 0..slot.last_good.len() {
                        slot.comp.records_stale += 1;
                        self.telemetry.count_id(ids.records_stale, 1);
                        if self.data.len() < self.config.max_samples {
                            // Columnar last-good substitution: copies the
                            // row in place, allocation-free.
                            self.data.push_stale_copy(slot.last_good[k], t);
                        } else {
                            self.dropped += 1;
                            self.telemetry.count_id(ids.records_dropped, 1);
                        }
                    }
                }
                if slot.consecutive_failures >= policy.disable_after {
                    slot.disabled = true;
                    slot.comp.mark_disabled(self.rank, t.as_nanos());
                    self.telemetry.count_id(ids.devices_disabled, 1);
                }
            }
        }
    }

    /// Open a tagged section ("3 work loops → 6 lines of code").
    pub fn start_tag(&mut self, label: &str, at: SimTime) {
        self.tags.push(TagEvent {
            label: label.to_owned(),
            kind: TagKind::Start,
            at,
        });
    }

    /// Close a tagged section.
    pub fn end_tag(&mut self, label: &str, at: SimTime) {
        self.tags.push(TagEvent {
            label: label.to_owned(),
            kind: TagKind::End,
            at,
        });
    }

    /// `MonEQ_Finalize`: stop polling, inject tag markers, render the
    /// output file, and account the scale-dependent finalize cost.
    pub fn finalize(mut self, now: SimTime) -> FinalizeResult {
        assert_eq!(self.state, State::Running, "double finalize");
        self.run_until(now);
        self.state = State::Finalized;
        if self.telemetry.is_enabled() {
            // Per-mechanism fault-gate decision counters (how often each
            // documented pathology actually fired), finalize I/O-wave
            // occupancy, and the closing of the session span.
            for i in 0..self.slots.len() {
                let name = self.slots[i].backend.name();
                if let Some(gs) = self.slots[i].backend.gate_stats() {
                    for (kind, n) in gs.kinds() {
                        if n > 0 {
                            self.telemetry.count(&format!("gate.{kind}/{name}"), n);
                        }
                    }
                }
                // Remotely-deployed mechanisms also fold their link's
                // transfer ledger: wire.{tx,rx,…}/{mechanism} counters
                // plus the round-trip histogram.
                if let Some(ws) = self.slots[i].backend.wire_stats() {
                    for (kind, n) in ws.kinds() {
                        if n > 0 {
                            self.telemetry.count(&format!("wire.{kind}/{name}"), n);
                        }
                    }
                    self.telemetry
                        .merge_histogram(&format!("wire.rtt/{name}"), &ws.rtt);
                }
            }
            let waves = self.config.total_agents.max(1).div_ceil(IO_STRIPE_WIDTH) as u64;
            self.telemetry.count_id(self.ids.finalize_waves, waves);
            self.telemetry.span_exit(now);
        }
        let app_runtime = now.saturating_since(self.started_at);
        let overhead = OverheadReport {
            app_runtime,
            init: self.init_cost,
            finalize: finalize_time(self.config.total_agents.max(1)),
            collection: self.collection_cost,
            fault_recovery: self.fault_recovery,
            polls: self.polls,
            retries: self.retries,
        };
        let completeness: Vec<Completeness> = self.slots.iter().map(|s| s.comp.clone()).collect();
        // Clean runs omit the report entirely so un-faulted output is
        // byte-identical to the pre-fault format; one degraded device puts
        // every device's counters in the file (a complete table).
        let file_completeness = if completeness.iter().all(Completeness::is_clean) {
            Vec::new()
        } else {
            completeness.clone()
        };
        let file = OutputFile {
            rank: self.rank,
            agent: self.config.agent_name.clone(),
            backends: self
                .slots
                .iter()
                .map(|s| s.backend.name().to_owned())
                .collect(),
            interval_ns: self.interval.as_nanos(),
            points: std::mem::take(&mut self.data),
            tags: std::mem::take(&mut self.tags),
            completeness: file_completeness,
        };
        FinalizeResult {
            file,
            overhead,
            dropped_records: self.dropped,
            completeness,
            telemetry: std::mem::take(&mut self.telemetry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Poll;
    use crate::reading::DataPoint;
    use powermodel::{Metric, Platform, Support};

    /// A constant-power test backend.
    struct Fake {
        min: SimDuration,
        cost: SimDuration,
        devices: usize,
    }

    impl EnvBackend for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            self.min
        }
        fn poll_cost(&self) -> SimDuration {
            self.cost
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
            Ok(Poll::complete(
                (0..self.devices)
                    .map(|d| DataPoint::power(t, &format!("dev{d}"), "board", 50.0))
                    .collect(),
            ))
        }
        fn records_per_poll(&self) -> usize {
            self.devices
        }
    }

    fn fake(min_ms: u64, cost_us: u64, devices: usize) -> Box<dyn EnvBackend> {
        Box::new(Fake {
            min: SimDuration::from_millis(min_ms),
            cost: SimDuration::from_micros(cost_us),
            devices,
        })
    }

    /// A backend that follows a failure script: `script[k]` decides poll
    /// `k`'s fate (attempt-level, so retries consume script entries).
    struct Scripted {
        script: Vec<Result<f64, ReadError>>,
        cursor: usize,
    }

    impl EnvBackend for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
            let step = self.script.get(self.cursor).cloned();
            self.cursor += 1;
            match step {
                Some(Ok(w)) => Ok(Poll::complete(vec![DataPoint::power(t, "dev", "d", w)])),
                Some(Err(e)) => Err(e),
                None => Ok(Poll::complete(vec![DataPoint::power(t, "dev", "d", 1.0)])),
            }
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    fn session_with(script: Vec<Result<f64, ReadError>>, retry: RetryPolicy) -> MonEq {
        MonEq::initialize(
            0,
            vec![Box::new(Scripted { script, cursor: 0 })],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                retry,
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn default_interval_is_slowest_backend_minimum() {
        let s = MonEq::initialize(
            0,
            vec![fake(60, 30, 1), fake(560, 1_100, 1)],
            MonEqConfig::default(),
            SimTime::ZERO,
        );
        assert_eq!(s.interval(), SimDuration::from_millis(560));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn interval_below_minimum_panics() {
        MonEq::initialize(
            0,
            vec![fake(60, 30, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(10)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
    }

    #[test]
    fn polls_fire_at_interval_and_collect_per_device() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 2)], // a node with two accelerators
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(1));
        // First poll at init_cost + 100 ms, then every 100 ms: ~9-10 polls,
        // each with 2 records (both accelerators, individually).
        let r = s.records();
        assert!((18..=20).contains(&r), "records {r}");
        let result = s.finalize(SimTime::from_secs(1));
        assert_eq!(result.file.points.len(), r);
        assert!(result.file.points.iter().any(|p| p.device == "dev1"));
        assert_eq!(result.overhead.polls as usize * 2, r);
    }

    #[test]
    fn collection_cost_accumulates_per_backend_poll() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 1_000, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(10));
        let result = s.finalize(SimTime::from_secs(10));
        let polls = result.overhead.polls;
        assert_eq!(
            result.overhead.collection,
            SimDuration::from_millis(polls),
            "1 ms per poll"
        );
        // ~1% *collection* overhead at a 100 ms interval with a 1 ms poll
        // cost (total() also carries the init/finalize one-time costs).
        let collection_frac =
            result.overhead.collection.as_secs_f64() / result.overhead.app_runtime.as_secs_f64();
        assert!((collection_frac - 0.010).abs() < 0.002, "{collection_frac}");
    }

    #[test]
    fn preallocated_array_drops_beyond_capacity() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                max_samples: 5,
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(2));
        let result = s.finalize(SimTime::from_secs(2));
        assert_eq!(result.file.points.len(), 5);
        assert!(result.dropped_records > 0);
    }

    #[test]
    fn tags_survive_into_the_output_file() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.start_tag("loop1", SimTime::from_millis(200));
        s.run_until(SimTime::from_millis(700));
        s.end_tag("loop1", SimTime::from_millis(700));
        let result = s.finalize(SimTime::from_secs(1));
        assert_eq!(result.file.tags.len(), 2);
        let spans = crate::tags::pair_tags(&result.file.tags).unwrap();
        assert_eq!(spans[0].0, "loop1");
        // Round-trip through the text format too.
        let parsed = OutputFile::parse(&result.file.render()).unwrap();
        assert_eq!(parsed.tags.len(), 2);
    }

    #[test]
    fn overhead_report_scales_with_agents() {
        let mk = |agents: usize| {
            let s = MonEq::initialize(
                0,
                vec![fake(100, 10, 1)],
                MonEqConfig {
                    interval: Some(SimDuration::from_millis(100)),
                    total_agents: agents,
                    ..MonEqConfig::default()
                },
                SimTime::ZERO,
            );
            s.finalize(SimTime::from_secs(1)).overhead
        };
        let small = mk(1);
        let big = mk(32);
        assert!(big.finalize > small.finalize * 2);
        assert!(big.init > small.init);
        assert_eq!(big.polls, small.polls, "collection is scale-independent");
    }

    #[test]
    fn clean_run_reports_clean_completeness_and_omits_it_from_file() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 2)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(1));
        let result = s.finalize(SimTime::from_secs(1));
        assert_eq!(result.completeness.len(), 1);
        let c = &result.completeness[0];
        assert!(c.is_clean() && c.reconciles());
        assert_eq!(c.scheduled, result.overhead.polls);
        assert_eq!(c.records_fresh as usize, result.file.points.len());
        assert!(result.file.completeness.is_empty(), "clean file stays lean");
        assert_eq!(result.overhead.fault_recovery, SimDuration::ZERO);
        assert_eq!(result.overhead.retries, 0);
    }

    #[test]
    fn transient_failures_retry_and_recover() {
        // Poll 1: fails twice, succeeds on the 3rd attempt (2 retries).
        let script = vec![
            Err(ReadError::Transient("x".into())),
            Err(ReadError::Transient("x".into())),
            Ok(10.0),
            Ok(11.0),
        ];
        let mut s = session_with(script, RetryPolicy::default());
        s.run_until(SimTime::from_millis(250));
        let result = s.finalize(SimTime::from_millis(250));
        let c = &result.completeness[0];
        assert_eq!(c.scheduled, 2);
        assert_eq!(c.succeeded, 2);
        assert_eq!(c.retried, 2);
        assert_eq!(c.records_fresh, 2);
        assert!(c.reconciles());
        assert_eq!(result.overhead.retries, 2);
        // Backoff 1 ms + 2 ms charged to fault recovery.
        assert_eq!(result.overhead.fault_recovery, SimDuration::from_millis(3));
        // Both polls' watts arrive fresh.
        assert!(result.file.points.iter().all(|p| !p.stale));
    }

    #[test]
    fn exhausted_retries_fall_back_to_last_good_value() {
        // Poll 1 succeeds; poll 2 fails through all attempts.
        let mut script = vec![Ok(42.0)];
        script.extend((0..3).map(|_| Err(ReadError::Transient("x".into()))));
        let mut s = session_with(script, RetryPolicy::default());
        s.run_until(SimTime::from_millis(250));
        let result = s.finalize(SimTime::from_millis(250));
        let c = &result.completeness[0];
        assert_eq!(c.scheduled, 2);
        assert_eq!(c.succeeded, 1);
        assert_eq!(c.stale_polls, 1);
        assert_eq!(c.records_stale, 1);
        assert!(c.reconciles());
        assert_eq!(c.records_expected(), 2);
        // The substitute record carries poll 2's timestamp and the stale
        // flag, with poll 1's value.
        let sub = result.file.points.last().unwrap();
        assert!(sub.stale);
        assert_eq!(sub.watts, 42.0);
        assert!(sub.timestamp > result.file.points.first().unwrap().timestamp);
        // A degraded run writes the completeness table into the file.
        assert_eq!(result.file.completeness.len(), 1);
    }

    #[test]
    fn failure_without_history_is_a_missed_poll() {
        let script = vec![Err(ReadError::NoData), Ok(5.0)];
        let mut s = session_with(script, RetryPolicy::default());
        s.run_until(SimTime::from_millis(250));
        let result = s.finalize(SimTime::from_millis(250));
        let c = &result.completeness[0];
        assert_eq!(c.missed_polls, 1);
        assert_eq!(c.records_lost, 1);
        assert_eq!(c.retried, 0, "NoData is not retryable");
        assert_eq!(c.succeeded, 1);
        assert!(c.reconciles());
        assert_eq!(result.file.points.len(), 1);
    }

    #[test]
    fn timeout_stall_is_charged_capped() {
        let policy = RetryPolicy {
            max_retries: 0,
            timeout: SimDuration::from_millis(20),
            ..RetryPolicy::default()
        };
        let script = vec![Err(ReadError::Timeout {
            stalled: SimDuration::from_millis(500),
        })];
        let mut s = session_with(script, policy);
        s.run_until(SimTime::from_millis(150));
        let result = s.finalize(SimTime::from_millis(150));
        // The 500 ms stall is capped at the 20 ms per-backend timeout.
        assert_eq!(result.overhead.fault_recovery, SimDuration::from_millis(20));
        assert!(result.overhead.total() > result.overhead.collection);
    }

    #[test]
    fn telemetry_mirrors_completeness_and_latency() {
        // Poll 1 retries twice then succeeds; poll 2 is clean.
        let script = vec![
            Err(ReadError::Transient("x".into())),
            Err(ReadError::Transient("x".into())),
            Ok(10.0),
            Ok(11.0),
        ];
        let mut s = MonEq::initialize(
            0,
            vec![Box::new(Scripted { script, cursor: 0 })],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                telemetry: true,
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_millis(250));
        let result = s.finalize(SimTime::from_millis(250));
        let t = result.telemetry.report();
        assert_eq!(t.counter("polls.scheduled"), 2);
        assert_eq!(t.counter("polls.succeeded"), 2);
        assert_eq!(t.counter("polls.retried"), 2);
        assert_eq!(t.counter("faults.transient"), 2);
        assert_eq!(t.counter("records.fresh"), 2);
        // Query latency: poll 1 = 10 us cost + 1 ms + 2 ms backoff, poll 2
        // = 10 us. Exact min/max; mean is exact too.
        let h = &t.histograms["query_latency/scripted"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(SimDuration::from_micros(10)));
        assert_eq!(h.max(), Some(SimDuration::from_micros(3_010)));
        // Spans: one session span, two poll spans, two per-backend spans.
        assert_eq!(t.spans["session"].count, 1);
        assert_eq!(t.spans["poll"].count, 2);
        assert_eq!(t.spans["poll/scripted"].count, 2);
        assert_eq!(t.spans["poll/scripted"].depth, 2);
        assert_eq!(
            t.spans["poll/scripted"].total,
            SimDuration::from_micros(3_020)
        );
    }

    #[test]
    fn telemetry_disabled_by_default_and_output_identical() {
        let mk = |telemetry: bool| {
            let script = vec![Err(ReadError::Transient("x".into())), Ok(10.0), Ok(11.0)];
            let mut s = MonEq::initialize(
                0,
                vec![Box::new(Scripted { script, cursor: 0 })],
                MonEqConfig {
                    interval: Some(SimDuration::from_millis(100)),
                    telemetry,
                    ..MonEqConfig::default()
                },
                SimTime::ZERO,
            );
            s.run_until(SimTime::from_millis(250));
            s.finalize(SimTime::from_millis(250))
        };
        let off = mk(false);
        let on = mk(true);
        assert!(off.telemetry.is_empty());
        assert!(!on.telemetry.is_empty());
        // Telemetry must never change what the session produces.
        assert_eq!(off.file.render(), on.file.render());
        assert_eq!(off.overhead, on.overhead);
        assert_eq!(off.completeness, on.completeness);
    }

    #[test]
    fn device_disables_after_consecutive_failures() {
        let policy = RetryPolicy {
            max_retries: 0,
            disable_after: 3,
            ..RetryPolicy::default()
        };
        let script: Vec<_> = (0..20).map(|_| Err(ReadError::NoData)).collect();
        let mut s = session_with(script, policy);
        s.run_until(SimTime::from_secs(1));
        let result = s.finalize(SimTime::from_secs(1));
        let c = &result.completeness[0];
        assert!(c.disabled_at_ns.is_some());
        // Every poll missed: 3 live failures, the rest disabled.
        assert_eq!(c.missed_polls, c.scheduled);
        assert_eq!(c.succeeded, 0);
        assert!(c.reconciles());
        assert_eq!(c.records_lost, c.scheduled);
        // Disabled polls charge no collection cost.
        let live_cost = SimDuration::from_micros(10) * 3;
        assert_eq!(result.overhead.collection, live_cost);
    }
}
