//! The profiling session: Listing 1's `MonEQ_Initialize` … `MonEQ_Finalize`.
//!
//! A session belongs to one agent rank — "an array local to the finest
//! granularity possible on the system. For example, on a BG/Q, this is the
//! local agent rank on a node card, but for other systems this could be a
//! single node. If a node has several accelerators installed locally, each
//! of these is accounted for individually within the file produced for the
//! node." (§III)

use crate::backend::{validate_interval, EnvBackend};
use crate::output::OutputFile;
use crate::overhead::{finalize_time, init_time, OverheadReport};
use crate::reading::DataPoint;
use crate::tags::{TagEvent, TagKind};
use simkit::{EventQueue, SimDuration, SimTime};

/// Session configuration.
#[derive(Clone, Debug)]
pub struct MonEqConfig {
    /// Polling interval; `None` = "the lowest polling interval possible for
    /// the given hardware" (the slowest backend minimum when several
    /// backends are attached, so every poll has fresh data everywhere).
    pub interval: Option<SimDuration>,
    /// Preallocated record-array capacity ("allocated to a reasonably large
    /// number"; records beyond it are dropped and counted).
    pub max_samples: usize,
    /// Agent name written into the output header.
    pub agent_name: String,
    /// Number of agent ranks in the whole run (drives the collective init/
    /// finalize cost model; 1 for single-node profiling).
    pub total_agents: usize,
}

impl Default for MonEqConfig {
    fn default() -> Self {
        MonEqConfig {
            interval: None,
            max_samples: 1 << 20,
            agent_name: "node0".into(),
            total_agents: 1,
        }
    }
}

/// Session lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Running,
    Finalized,
}

/// What finalize returns.
#[derive(Clone, Debug)]
pub struct FinalizeResult {
    /// The rendered per-node output file.
    pub file: OutputFile,
    /// The overhead ledger (one Table III column).
    pub overhead: OverheadReport,
    /// Records dropped because the preallocated array filled up.
    pub dropped_records: u64,
}

/// An active profiling session.
pub struct MonEq {
    rank: u32,
    backends: Vec<Box<dyn EnvBackend>>,
    config: MonEqConfig,
    interval: SimDuration,
    data: Vec<DataPoint>,
    tags: Vec<TagEvent>,
    dropped: u64,
    timer: EventQueue<()>,
    started_at: SimTime,
    init_cost: SimDuration,
    collection_cost: SimDuration,
    polls: u64,
    state: State,
}

impl MonEq {
    /// `MonEQ_Initialize`: set up the record array and register the
    /// SIGALRM-style timer. Charges the Table III initialization cost and
    /// schedules the first poll one interval after `now`.
    ///
    /// Panics if a requested interval is below any backend's minimum, or if
    /// no backends are given — both programming errors in the caller.
    pub fn initialize(
        rank: u32,
        backends: Vec<Box<dyn EnvBackend>>,
        config: MonEqConfig,
        now: SimTime,
    ) -> Self {
        assert!(!backends.is_empty(), "at least one backend required");
        let interval = match config.interval {
            Some(req) => {
                for b in &backends {
                    validate_interval(b.as_ref(), req)
                        .unwrap_or_else(|e| panic!("invalid interval: {e}"));
                }
                req
            }
            None => backends
                .iter()
                .map(|b| b.min_interval())
                .max()
                .expect("non-empty backends"),
        };
        let init_cost = init_time(config.total_agents.max(1));
        let mut timer = EventQueue::new();
        let first = now + init_cost + interval;
        timer.schedule(first, ());
        MonEq {
            rank,
            backends,
            // Capped initial reservation: at cluster scale (tens of
            // thousands of ranks in one process) preallocating the full
            // max_samples per rank would exhaust memory before a single
            // poll. The array still grows up to max_samples; only the
            // up-front reservation is bounded.
            data: Vec::with_capacity(config.max_samples.min(1 << 10)),
            tags: Vec::new(),
            dropped: 0,
            timer,
            started_at: now,
            init_cost,
            collection_cost: SimDuration::ZERO,
            polls: 0,
            interval,
            config,
            state: State::Running,
        }
    }

    /// The effective polling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of records collected so far.
    pub fn records(&self) -> usize {
        self.data.len()
    }

    /// Drive the timer up to `until` (the application calls this as virtual
    /// time passes; each fire polls every backend and charges its cost).
    pub fn run_until(&mut self, until: SimTime) {
        assert_eq!(self.state, State::Running, "session already finalized");
        while let Some(ev) = self.timer.pop_until(until) {
            let t = ev.at;
            for b in &mut self.backends {
                self.collection_cost += b.poll_cost();
                for p in b.poll(t) {
                    if self.data.len() < self.config.max_samples {
                        self.data.push(p);
                    } else {
                        self.dropped += 1;
                    }
                }
            }
            self.polls += 1;
            self.timer.schedule(t + self.interval, ());
        }
    }

    /// Open a tagged section ("3 work loops → 6 lines of code").
    pub fn start_tag(&mut self, label: &str, at: SimTime) {
        self.tags.push(TagEvent {
            label: label.to_owned(),
            kind: TagKind::Start,
            at,
        });
    }

    /// Close a tagged section.
    pub fn end_tag(&mut self, label: &str, at: SimTime) {
        self.tags.push(TagEvent {
            label: label.to_owned(),
            kind: TagKind::End,
            at,
        });
    }

    /// `MonEQ_Finalize`: stop polling, inject tag markers, render the
    /// output file, and account the scale-dependent finalize cost.
    pub fn finalize(mut self, now: SimTime) -> FinalizeResult {
        assert_eq!(self.state, State::Running, "double finalize");
        self.run_until(now);
        self.state = State::Finalized;
        let app_runtime = now.saturating_since(self.started_at);
        let overhead = OverheadReport {
            app_runtime,
            init: self.init_cost,
            finalize: finalize_time(self.config.total_agents.max(1)),
            collection: self.collection_cost,
            polls: self.polls,
        };
        let file = OutputFile {
            rank: self.rank,
            agent: self.config.agent_name.clone(),
            backends: self.backends.iter().map(|b| b.name().to_owned()).collect(),
            interval_ns: self.interval.as_nanos(),
            points: std::mem::take(&mut self.data),
            tags: std::mem::take(&mut self.tags),
        };
        FinalizeResult {
            file,
            overhead,
            dropped_records: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powermodel::{Metric, Platform, Support};

    /// A constant-power test backend.
    struct Fake {
        min: SimDuration,
        cost: SimDuration,
        devices: usize,
    }

    impl EnvBackend for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            self.min
        }
        fn poll_cost(&self) -> SimDuration {
            self.cost
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn poll(&mut self, t: SimTime) -> Vec<DataPoint> {
            (0..self.devices)
                .map(|d| DataPoint::power(t, &format!("dev{d}"), "board", 50.0))
                .collect()
        }
        fn records_per_poll(&self) -> usize {
            self.devices
        }
    }

    fn fake(min_ms: u64, cost_us: u64, devices: usize) -> Box<dyn EnvBackend> {
        Box::new(Fake {
            min: SimDuration::from_millis(min_ms),
            cost: SimDuration::from_micros(cost_us),
            devices,
        })
    }

    #[test]
    fn default_interval_is_slowest_backend_minimum() {
        let s = MonEq::initialize(
            0,
            vec![fake(60, 30, 1), fake(560, 1_100, 1)],
            MonEqConfig::default(),
            SimTime::ZERO,
        );
        assert_eq!(s.interval(), SimDuration::from_millis(560));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn interval_below_minimum_panics() {
        MonEq::initialize(
            0,
            vec![fake(60, 30, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(10)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
    }

    #[test]
    fn polls_fire_at_interval_and_collect_per_device() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 2)], // a node with two accelerators
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(1));
        // First poll at init_cost + 100 ms, then every 100 ms: ~9-10 polls,
        // each with 2 records (both accelerators, individually).
        let r = s.records();
        assert!((18..=20).contains(&r), "records {r}");
        let result = s.finalize(SimTime::from_secs(1));
        assert_eq!(result.file.points.len(), r);
        assert!(result.file.points.iter().any(|p| p.device == "dev1"));
        assert_eq!(result.overhead.polls as usize * 2, r);
    }

    #[test]
    fn collection_cost_accumulates_per_backend_poll() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 1_000, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(10));
        let result = s.finalize(SimTime::from_secs(10));
        let polls = result.overhead.polls;
        assert_eq!(
            result.overhead.collection,
            SimDuration::from_millis(polls),
            "1 ms per poll"
        );
        // ~1% *collection* overhead at a 100 ms interval with a 1 ms poll
        // cost (total() also carries the init/finalize one-time costs).
        let collection_frac =
            result.overhead.collection.as_secs_f64() / result.overhead.app_runtime.as_secs_f64();
        assert!((collection_frac - 0.010).abs() < 0.002, "{collection_frac}");
    }

    #[test]
    fn preallocated_array_drops_beyond_capacity() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                max_samples: 5,
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_secs(2));
        let result = s.finalize(SimTime::from_secs(2));
        assert_eq!(result.file.points.len(), 5);
        assert!(result.dropped_records > 0);
    }

    #[test]
    fn tags_survive_into_the_output_file() {
        let mut s = MonEq::initialize(
            0,
            vec![fake(100, 10, 1)],
            MonEqConfig {
                interval: Some(SimDuration::from_millis(100)),
                ..MonEqConfig::default()
            },
            SimTime::ZERO,
        );
        s.start_tag("loop1", SimTime::from_millis(200));
        s.run_until(SimTime::from_millis(700));
        s.end_tag("loop1", SimTime::from_millis(700));
        let result = s.finalize(SimTime::from_secs(1));
        assert_eq!(result.file.tags.len(), 2);
        let spans = crate::tags::pair_tags(&result.file.tags).unwrap();
        assert_eq!(spans[0].0, "loop1");
        // Round-trip through the text format too.
        let parsed = OutputFile::parse(&result.file.render()).unwrap();
        assert_eq!(parsed.tags.len(), 2);
    }

    #[test]
    fn overhead_report_scales_with_agents() {
        let mk = |agents: usize| {
            let s = MonEq::initialize(
                0,
                vec![fake(100, 10, 1)],
                MonEqConfig {
                    interval: Some(SimDuration::from_millis(100)),
                    total_agents: agents,
                    ..MonEqConfig::default()
                },
                SimTime::ZERO,
            );
            s.finalize(SimTime::from_secs(1)).overhead
        };
        let small = mk(1);
        let big = mk(32);
        assert!(big.finalize > small.finalize * 2);
        assert!(big.init > small.init);
        assert_eq!(big.polls, small.polls, "collection is scale-independent");
    }
}
