//! The record MonEQ stores per poll.
//!
//! §III: initialization "allocates an array of a custom C struct with
//! fields that correspond to all possible data points which can be
//! collected for the given hardware". [`DataPoint`] is that struct: a
//! fixed-shape record with optional fields for data a given backend cannot
//! provide.

use simkit::SimTime;

/// One collected record: a device/domain power sample with optional
/// voltage/current/temperature companions.
#[derive(Clone, Debug, PartialEq)]
pub struct DataPoint {
    /// When the poll fired (virtual time).
    pub timestamp: SimTime,
    /// Device within the node (e.g. `nodecard`, `pkg`, `gpu0`, `mic0`).
    /// Several accelerators on one node each report under their own name.
    pub device: String,
    /// Domain within the device (e.g. `Chip Core`, `DRAM`, `board`).
    pub domain: String,
    /// Power, watts.
    pub watts: f64,
    /// Rail voltage, volts (platforms that expose it).
    pub volts: Option<f64>,
    /// Rail current, amperes (platforms that expose it).
    pub amps: Option<f64>,
    /// Temperature, °C (platforms that expose it).
    pub temp_c: Option<f64>,
    /// Degradation marker: `true` when the record is a last-good-value
    /// substitute or a glitched sample served while the mechanism was
    /// failing, rather than a fresh reading at `timestamp`. Stale records
    /// are counted separately in the completeness report and flagged in the
    /// output file so post-processing can exclude them.
    pub stale: bool,
}

impl DataPoint {
    /// A power-only record.
    pub fn power(timestamp: SimTime, device: &str, domain: &str, watts: f64) -> Self {
        DataPoint {
            timestamp,
            device: device.to_owned(),
            domain: domain.to_owned(),
            watts,
            volts: None,
            amps: None,
            temp_c: None,
            stale: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_constructor_defaults() {
        let p = DataPoint::power(SimTime::from_secs(1), "gpu0", "board", 55.0);
        assert_eq!(p.device, "gpu0");
        assert_eq!(p.watts, 55.0);
        assert!(p.volts.is_none() && p.amps.is_none() && p.temp_c.is_none());
    }
}
