//! The batched collection planner: sharing domains and the shared read
//! cache behind them.
//!
//! On a real machine several agent ranks sit behind one sensor: on BG/Q a
//! node card hosts 32 nodes but EMON publishes *one* set of domain
//! readings for the whole card; on Stampede every rank on a node shares
//! the socket's RAPL counters and the card's SMC. A naive deployment has
//! all co-resident agents pay the full access-path cost (1.10 ms per EMON
//! query, ~1.3 ms per NVML PCIe round-trip) for data that can only be the
//! same generation — the 32× waste the real MonEQ sidesteps with
//! per-node-card collection.
//!
//! A [`CollectionPlan`] declares how many consecutive ranks share one
//! sensor. Within a sharing domain, leader election is implicit and
//! deterministic: the first rank to consult the domain's
//! [`SharedReadCache`] for a given generation performs the real query
//! (and is charged for it); everyone after it gets the generation at zero
//! marginal cost. Because every mechanism model is a deterministic
//! function of grid time, a follower's recomputed value is bit-equal to
//! the leader's, so outputs are byte-identical whether the plan is on or
//! off — the plan changes the *charged cost*, never the data.
//!
//! Faults never hide behind the cache: a leader whose read fails
//! publishes a failure marker, and every follower then bypasses the cache
//! and performs (and pays for) its own live read — stale data is never
//! served across a fault, and a disabled leader simply stops publishing,
//! so the next rank in the domain takes over.

use crate::backend::Poll;
use simkit::wire::LinkSpec;
use simkit::{CacheLookup, CacheStats, CadenceCache, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Where the mechanism's access path terminates: the paper's in-band vs.
/// out-of-band axis as a deployment knob.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Deployment {
    /// In-band: the agent crosses the access path with a direct
    /// in-process call (the pre-wire behaviour, and the default).
    #[default]
    Local,
    /// Out-of-band: every poll is a framed request/response exchange over
    /// a simulated link with this personality. Each rank's link weather is
    /// independent (the cluster salts the link's noise streams by rank).
    Remote(LinkSpec),
}

/// How agent ranks map onto shared sensors.
///
/// `domain_size` consecutive ranks form one sharing domain (ranks 0..n-1,
/// n..2n-1, …). The caller must make the domains match the hardware: every
/// rank in a domain has to be attached to the *same* device (the same node
/// card, socket, or card), because a stored read may be distributed to any
/// rank of the domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectionPlan {
    domain_size: usize,
    deployment: Deployment,
}

impl CollectionPlan {
    /// Every rank collects for itself — the naive deployment, and the
    /// default. No cache is consulted at all, so runs are bit-identical
    /// to builds that predate the planner.
    pub fn per_agent() -> Self {
        CollectionPlan {
            domain_size: 1,
            deployment: Deployment::Local,
        }
    }

    /// `domain_size` consecutive ranks share one sensor.
    ///
    /// Panics if `domain_size` is zero.
    pub fn shared(domain_size: usize) -> Self {
        assert!(domain_size >= 1, "a sharing domain needs at least one rank");
        CollectionPlan {
            domain_size,
            deployment: Deployment::Local,
        }
    }

    /// The BG/Q sharing domain: 32 nodes per node card, one EMON sensor
    /// set for all of them (§II-A).
    pub fn node_card() -> Self {
        Self::shared(32)
    }

    /// Deploy every mechanism in this plan behind `deployment` — e.g.
    /// `Deployment::Remote(LinkSpec::mgmt())` serves all polls over a
    /// management-network link. Composes with sharing: a remote leader's
    /// fetch cost is still paid once per domain.
    pub fn deployed(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Where this plan's mechanisms are served from.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Ranks per sharing domain.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Does this plan actually share anything?
    pub fn is_shared(&self) -> bool {
        self.domain_size > 1
    }

    /// The sharing-domain index rank `rank` belongs to.
    pub fn domain_of(&self, rank: usize) -> usize {
        rank / self.domain_size
    }

    /// Number of sharing domains covering `agents` ranks (the last domain
    /// may be ragged).
    pub fn domains(&self, agents: usize) -> usize {
        agents.div_ceil(self.domain_size)
    }
}

impl Default for CollectionPlan {
    fn default() -> Self {
        Self::per_agent()
    }
}

/// One generation's stored outcome, as published by its leader.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedRead {
    /// The exact poll instant the leader queried at. A stored poll may
    /// only be *replayed* at this same instant (record timestamps carry
    /// the query time); at any other instant in the generation, followers
    /// recompute locally and share only the cost.
    pub at: SimTime,
    /// The leader's poll, stored only when the backend declared itself
    /// [`replayable`](crate::backend::EnvBackend::replayable). `None` is a
    /// cost-only marker: the generation was fetched (so followers skip
    /// the access-path charge) but the value must be recomputed locally.
    pub poll: Option<Poll>,
}

/// What a [`SharedReadCache::consult`] found (the owned counterpart of
/// [`simkit::CacheLookup`], so the cache lock is never held across the
/// caller's read).
#[derive(Clone, Debug, PartialEq)]
pub enum SharedLookup {
    /// A leader already fetched this generation; the access-path cost is
    /// not charged again.
    Hit(SharedRead),
    /// The leader's read failed: bypass the cache and perform your own
    /// live read at full cost.
    Failed,
    /// Nobody fetched this generation yet — you are the leader: read at
    /// full cost and [`publish`](SharedReadCache::publish) the outcome.
    Miss,
}

/// One sharing domain's cache: a [`CadenceCache`] per mechanism, behind a
/// mutex so a domain's ranks can share it across cluster worker threads.
///
/// The lock is uncontended by construction — [`crate::ClusterRun`] aligns
/// its dispatch chunks on domain boundaries, so all ranks of a domain are
/// driven by one worker — and lock poisoning is recovered explicitly
/// (`PoisonError::into_inner`), per the crate's no-unwrap discipline.
#[derive(Debug, Default)]
pub struct SharedReadCache {
    caches: Mutex<BTreeMap<&'static str, CadenceCache<SharedRead>>>,
}

impl SharedReadCache {
    /// An empty cache.
    pub fn new() -> Self {
        SharedReadCache::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, CadenceCache<SharedRead>>> {
        self.caches.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up mechanism `name`'s generation at `t`, creating the
    /// per-mechanism cache on first use with update grid `cadence`.
    pub fn consult(&self, name: &'static str, cadence: SimDuration, t: SimTime) -> SharedLookup {
        let mut caches = self.lock();
        let cache = caches
            .entry(name)
            .or_insert_with(|| CadenceCache::new(cadence));
        match cache.lookup(t) {
            CacheLookup::Hit(read) => SharedLookup::Hit(read.clone()),
            CacheLookup::Failed => SharedLookup::Failed,
            CacheLookup::Miss => SharedLookup::Miss,
        }
    }

    /// Publish a leader's successful read for `t`'s generation. First
    /// writer wins, so a republish can never flip a stored outcome.
    pub fn publish(&self, name: &'static str, cadence: SimDuration, t: SimTime, read: SharedRead) {
        let mut caches = self.lock();
        caches
            .entry(name)
            .or_insert_with(|| CadenceCache::new(cadence))
            .insert(t, read);
    }

    /// Publish a leader's *failed* read for `t`'s generation: followers
    /// will bypass the cache and read for themselves at full cost.
    pub fn publish_failure(&self, name: &'static str, cadence: SimDuration, t: SimTime) {
        let mut caches = self.lock();
        caches
            .entry(name)
            .or_insert_with(|| CadenceCache::new(cadence))
            .insert_failure(t);
    }

    /// Drop generations every rank has been driven past (called by the
    /// cluster at window boundaries so Mira-scale sweeps don't accumulate
    /// a whole run's generations).
    pub fn prune_before(&self, t: SimTime) {
        for cache in self.lock().values_mut() {
            cache.prune_before(t);
        }
    }

    /// The exact hit/miss/bypass ledger, folded over every mechanism.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for cache in self.lock().values() {
            total.absorb(&cache.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::DataPoint;

    const CADENCE: SimDuration = SimDuration::from_millis(560);

    fn poll_at(t: SimTime) -> Poll {
        Poll::complete(vec![DataPoint::power(t, "nodecard", "chip", 50.0)])
    }

    #[test]
    fn plan_maps_ranks_onto_domains() {
        let plan = CollectionPlan::node_card();
        assert_eq!(plan.domain_size(), 32);
        assert!(plan.is_shared());
        assert_eq!(plan.domain_of(0), 0);
        assert_eq!(plan.domain_of(31), 0);
        assert_eq!(plan.domain_of(32), 1);
        assert_eq!(plan.domains(1_536 * 32), 1_536, "Mira's node cards");
        assert_eq!(plan.domains(33), 2, "ragged tail gets its own domain");
        let naive = CollectionPlan::default();
        assert!(!naive.is_shared());
        assert_eq!(naive.domain_of(7), 7);
    }

    #[test]
    fn leader_publishes_followers_hit() {
        let cache = SharedReadCache::new();
        let t = SimTime::from_millis(600);
        assert_eq!(cache.consult("bgq-emon", CADENCE, t), SharedLookup::Miss);
        cache.publish(
            "bgq-emon",
            CADENCE,
            t,
            SharedRead {
                at: t,
                poll: Some(poll_at(t)),
            },
        );
        // Any instant in the same 560 ms generation hits.
        let later = SimTime::from_millis(1_100);
        match cache.consult("bgq-emon", CADENCE, later) {
            SharedLookup::Hit(read) => {
                assert_eq!(read.at, t);
                assert_eq!(read.poll, Some(poll_at(t)));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.bypasses), (1, 1, 0));
    }

    #[test]
    fn failed_leader_forces_bypass_and_next_generation_recovers() {
        let cache = SharedReadCache::new();
        let t = SimTime::from_millis(600);
        assert_eq!(cache.consult("bgq-emon", CADENCE, t), SharedLookup::Miss);
        cache.publish_failure("bgq-emon", CADENCE, t);
        assert_eq!(
            cache.consult("bgq-emon", CADENCE, SimTime::from_millis(700)),
            SharedLookup::Failed
        );
        // The next generation is a fresh election.
        assert_eq!(
            cache.consult("bgq-emon", CADENCE, SimTime::from_millis(1_200)),
            SharedLookup::Miss
        );
        assert_eq!(cache.stats().bypasses, 1);
    }

    #[test]
    fn mechanisms_are_cached_independently() {
        let cache = SharedReadCache::new();
        let t = SimTime::from_millis(100);
        cache.publish(
            "mic-micras",
            SimDuration::from_millis(50),
            t,
            SharedRead { at: t, poll: None },
        );
        // A different mechanism at the same instant is still a miss.
        assert_eq!(
            cache.consult("rapl-msr", SimDuration::from_millis(1), t),
            SharedLookup::Miss
        );
        match cache.consult("mic-micras", SimDuration::from_millis(50), t) {
            SharedLookup::Hit(read) => assert_eq!(read.poll, None, "cost-only marker"),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn single_rank_domains_share_nothing() {
        let plan = CollectionPlan::shared(1);
        assert!(
            !plan.is_shared(),
            "a 1-rank domain has nobody to share with"
        );
        assert_eq!(plan.domain_size(), 1);
        assert_eq!(plan.domain_of(0), 0);
        assert_eq!(plan.domain_of(9), 9);
        assert_eq!(plan.domains(9), 9);
        assert_eq!(plan.domains(0), 0, "no ranks, no domains");
        assert_eq!(CollectionPlan::shared(4).domains(0), 0);
        assert_eq!(plan, CollectionPlan::per_agent());
    }

    #[test]
    fn prune_at_exact_generation_boundary_keeps_the_boundary() {
        let cache = SharedReadCache::new();
        for k in 0..4u64 {
            let t = SimTime::from_millis(k * 560);
            cache.publish("bgq-emon", CADENCE, t, SharedRead { at: t, poll: None });
        }
        // 1120 ms is exactly where generation 2 begins: 0 and 1 go, 2 stays.
        cache.prune_before(SimTime::from_millis(1_120));
        assert_eq!(
            cache.consult("bgq-emon", CADENCE, SimTime::from_millis(1_119)),
            SharedLookup::Miss
        );
        assert!(matches!(
            cache.consult("bgq-emon", CADENCE, SimTime::from_millis(1_120)),
            SharedLookup::Hit(_)
        ));
    }

    #[test]
    fn prune_drops_finished_generations() {
        let cache = SharedReadCache::new();
        for k in 0..8u64 {
            let t = SimTime::from_millis(k * 560 + 10);
            cache.publish("bgq-emon", CADENCE, t, SharedRead { at: t, poll: None });
        }
        cache.prune_before(SimTime::from_millis(4 * 560));
        // Generations 0-3 are gone (misses again), 4+ still hit.
        assert_eq!(
            cache.consult("bgq-emon", CADENCE, SimTime::from_millis(560)),
            SharedLookup::Miss
        );
        assert!(matches!(
            cache.consult("bgq-emon", CADENCE, SimTime::from_millis(4 * 560 + 10)),
            SharedLookup::Hit(_)
        ));
    }
}
