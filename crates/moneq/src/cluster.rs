//! Multi-rank runs: MonEQ the way it actually runs on a machine.
//!
//! On Mira or Stampede, every agent rank (node card / node) runs its own
//! session; finalize gathers one output file per agent ("each node … within
//! the file produced for the node", §III). [`ClusterRun`] owns that
//! fan-out: it drives N sessions over the same virtual timeline, collects
//! their files, and reduces them — the machinery behind Figure 8's sum and
//! Table III's scale sweep.

use crate::backend::EnvBackend;
use crate::completeness::Completeness;
use crate::output::OutputFile;
use crate::overhead::OverheadReport;
use crate::session::{FinalizeResult, MonEq, MonEqConfig};
use simkit::{SimDuration, SimTime, TimeSeries};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of CPUs the host actually has (1 when it cannot be determined —
/// the safe assumption, since it keeps the run serial).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Default number of consecutive ranks dispatched to a worker as one unit.
///
/// Chunking amortizes the per-dispatch synchronization over many cheap
/// sessions; at Mira scale (49,152 nodes = 1,536 node-card agents) a worker
/// grabs a batch of ranks at a time instead of contending per rank.
pub const DEFAULT_CHUNK_SIZE: usize = 32;

/// A whole-machine profiling run.
///
/// Sessions never interact — every rank polls its own node's hardware — so
/// the fan-out is embarrassingly parallel. With [`with_par_agents`] above 1,
/// `run_until` and `finalize` drive the sessions on a scoped worker pool;
/// results are still gathered in rank order, so a parallel run produces a
/// [`ClusterResult`] identical to a serial run of the same seed and agents.
///
/// [`with_par_agents`]: ClusterRun::with_par_agents
pub struct ClusterRun {
    sessions: Vec<MonEq>,
    par_agents: usize,
    chunk_size: usize,
}

/// The gathered result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// One output file per agent rank, in rank order.
    pub files: Vec<OutputFile>,
    /// Per-agent overhead ledgers.
    pub overheads: Vec<OverheadReport>,
    /// Total records dropped across agents.
    pub dropped_records: u64,
    /// Per-rank completeness reports (rank → one entry per backend), in
    /// rank order like [`ClusterResult::files`].
    pub completeness: Vec<Vec<Completeness>>,
}

impl ClusterRun {
    /// Launch one session per backend factory. `make_backend(rank)` builds
    /// rank `rank`'s backend (each rank needs its own handle to its own
    /// node's hardware); `name(rank)` labels its output file.
    pub fn launch<B, N>(
        agents: usize,
        interval: Option<SimDuration>,
        make_backend: B,
        name: N,
        now: SimTime,
    ) -> Self
    where
        B: FnMut(usize) -> Box<dyn EnvBackend>,
        N: FnMut(usize) -> String,
    {
        let base = MonEqConfig {
            interval,
            ..MonEqConfig::default()
        };
        Self::launch_with(agents, make_backend, name, now, base)
    }

    /// Launch with an explicit base configuration (retry policy, record
    /// capacity, …). Per-rank `agent_name` and `total_agents` are still
    /// filled in here; the rest of `base` applies to every rank.
    pub fn launch_with<B, N>(
        agents: usize,
        mut make_backend: B,
        mut name: N,
        now: SimTime,
        base: MonEqConfig,
    ) -> Self
    where
        B: FnMut(usize) -> Box<dyn EnvBackend>,
        N: FnMut(usize) -> String,
    {
        assert!(agents >= 1);
        let sessions = (0..agents)
            .map(|rank| {
                MonEq::initialize(
                    rank as u32,
                    vec![make_backend(rank)],
                    MonEqConfig {
                        agent_name: name(rank),
                        total_agents: agents,
                        ..base.clone()
                    },
                    now,
                )
            })
            .collect();
        ClusterRun {
            sessions,
            par_agents: 1,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Set the worker-pool width for `run_until`/`finalize`. `1` (the
    /// default) keeps the run fully serial on the calling thread. The
    /// effective pool is additionally capped by [`host_cpus`] — asking for
    /// more workers than the host has cores only adds scheduling overhead
    /// (the 49k-agent regression this cap fixed), and on a single-CPU host
    /// the run stays on the serial path entirely.
    pub fn with_par_agents(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker required");
        self.par_agents = workers;
        self
    }

    /// Set how many consecutive ranks a worker claims per dispatch.
    pub fn with_chunk_size(mut self, ranks: usize) -> Self {
        assert!(ranks >= 1, "chunk size must be positive");
        self.chunk_size = ranks;
        self
    }

    /// The configured worker-pool width.
    pub fn par_agents(&self) -> usize {
        self.par_agents
    }

    /// Number of agent ranks.
    pub fn agents(&self) -> usize {
        self.sessions.len()
    }

    /// Worker count actually used for `n_chunks` dispatch units: the
    /// requested width, capped by the chunk count and the host's CPUs.
    /// Returns 1 (serial path, no pool at all) when the host has a single
    /// CPU or there is at most one chunk — spawning workers then only adds
    /// overhead with zero possible speedup.
    fn effective_workers(&self, n_chunks: usize) -> usize {
        if n_chunks < 2 {
            return 1;
        }
        self.par_agents.min(n_chunks).min(host_cpus())
    }

    /// Advance every rank's timer to `until`.
    ///
    /// With `par_agents > 1` the sessions advance concurrently on a scoped
    /// worker pool; each session still observes exactly the serial event
    /// sequence, because no state is shared between ranks.
    pub fn run_until(&mut self, until: SimTime) {
        let n_chunks = self.sessions.len().div_ceil(self.chunk_size.max(1));
        let workers = self.effective_workers(n_chunks);
        if workers <= 1 {
            for s in &mut self.sessions {
                s.run_until(until);
            }
            return;
        }
        let chunks: Vec<Mutex<&mut [MonEq]>> = self
            .sessions
            .chunks_mut(self.chunk_size)
            .map(Mutex::new)
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(chunk) = chunks.get(i) else { break };
                    // Uncontended: each index is claimed exactly once.
                    for s in chunk.lock().unwrap().iter_mut() {
                        s.run_until(until);
                    }
                });
            }
        });
    }

    /// Tag a section on every rank (collective tags, the common usage).
    pub fn start_tag_all(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sessions {
            s.start_tag(label, at);
        }
    }

    /// Close a collective tag.
    pub fn end_tag_all(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sessions {
            s.end_tag(label, at);
        }
    }

    /// Finalize every rank and gather the files.
    ///
    /// Finalization runs on the same worker pool as `run_until` when
    /// `par_agents > 1`, but files and overheads are always reduced in rank
    /// order, so the result is byte-identical to a serial finalize.
    pub fn finalize(self, now: SimTime) -> ClusterResult {
        let n = self.sessions.len();
        let n_chunks = n.div_ceil(self.chunk_size.max(1));
        let workers = self.effective_workers(n_chunks);
        let results: Vec<FinalizeResult> = if workers <= 1 {
            self.sessions.into_iter().map(|s| s.finalize(now)).collect()
        } else {
            // One slot per chunk of consecutive ranks: workers claim chunk
            // indices and finalize their sessions; gathering walks the
            // chunks in order afterwards, preserving rank order.
            let mut it = self.sessions.into_iter();
            let mut slots: Vec<Mutex<(Vec<MonEq>, Vec<FinalizeResult>)>> = Vec::new();
            loop {
                let chunk: Vec<MonEq> = it.by_ref().take(self.chunk_size).collect();
                if chunk.is_empty() {
                    break;
                }
                slots.push(Mutex::new((chunk, Vec::new())));
            }
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(i) else { break };
                        let mut guard = slot.lock().unwrap();
                        let (sessions, results) = &mut *guard;
                        results.reserve_exact(sessions.len());
                        for s in sessions.drain(..) {
                            results.push(s.finalize(now));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .flat_map(|slot| slot.into_inner().unwrap().1)
                .collect()
        };
        let mut files = Vec::with_capacity(n);
        let mut overheads = Vec::with_capacity(n);
        let mut completeness = Vec::with_capacity(n);
        let mut dropped = 0;
        for r in results {
            files.push(r.file);
            overheads.push(r.overhead);
            completeness.push(r.completeness);
            dropped += r.dropped_records;
        }
        ClusterResult {
            files,
            overheads,
            dropped_records: dropped,
            completeness,
        }
    }
}

impl ClusterResult {
    /// Per-agent power series for one device/domain pair (summing the
    /// watts of matching records per poll timestamp).
    ///
    /// Records are grouped by timestamp wherever they appear in the file —
    /// a backend that interleaves devices within a poll, or reports a late
    /// generation out of order, still contributes to the right instant.
    pub fn agent_series(&self, rank: usize, device: &str) -> TimeSeries {
        let file = &self.files[rank];
        let mut sums: std::collections::BTreeMap<SimTime, f64> = std::collections::BTreeMap::new();
        for p in file.points.iter().filter(|p| p.device == device) {
            *sums.entry(p.timestamp).or_insert(0.0) += p.watts;
        }
        let mut out = TimeSeries::new(format!("rank{rank} {device}"));
        for (t, watts) in sums {
            out.push(t, watts);
        }
        out
    }

    /// Machine-wide sum over all agents of one device's power (Figure 8's
    /// reduction). All agents must have polled on the same grid.
    pub fn sum_series(&self, device: &str) -> TimeSeries {
        let per_agent: Vec<TimeSeries> = (0..self.files.len())
            .map(|r| self.agent_series(r, device))
            .collect();
        TimeSeries::sum(format!("sum {device}"), &per_agent)
    }

    /// Write every agent's file into `dir` (the real finalize side effect).
    pub fn write_all(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        self.files.iter().map(|f| f.write_to(dir)).collect()
    }

    /// The run-wide completeness report: every rank's per-device counters
    /// folded together by device (backend) name, in first-seen order. The
    /// counters still reconcile after merging — sums of exact invariants
    /// are exact.
    pub fn completeness_by_device(&self) -> Vec<Completeness> {
        let mut merged: Vec<Completeness> = Vec::new();
        for per_rank in &self.completeness {
            for c in per_rank {
                match merged.iter_mut().find(|m| m.device == c.device) {
                    Some(m) => m.absorb(c),
                    None => merged.push(c.clone()),
                }
            }
        }
        merged
    }

    /// The Table III view: the slowest agent's ledger per phase (the
    /// numbers the paper reports are run-wide completion times).
    pub fn worst_case_overhead(&self) -> OverheadReport {
        let mut worst = self.overheads[0];
        for o in &self.overheads[1..] {
            if o.total() > worst.total() {
                worst = *o;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::DataPoint;
    use powermodel::{Metric, Platform, Support};

    struct Fake {
        rank: usize,
    }
    impl EnvBackend for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<crate::backend::Poll, crate::backend::ReadError> {
            Ok(crate::backend::Poll::complete(vec![DataPoint::power(
                t,
                "dev",
                "d",
                100.0 + self.rank as f64,
            )]))
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    fn launch(agents: usize) -> ClusterRun {
        ClusterRun::launch(
            agents,
            Some(SimDuration::from_millis(100)),
            |rank| Box::new(Fake { rank }),
            |rank| format!("node{rank}"),
            SimTime::ZERO,
        )
    }

    #[test]
    fn one_file_per_agent_in_rank_order() {
        let mut run = launch(4);
        run.run_until(SimTime::from_secs(2));
        let result = run.finalize(SimTime::from_secs(2));
        assert_eq!(result.files.len(), 4);
        for (i, f) in result.files.iter().enumerate() {
            assert_eq!(f.rank as usize, i);
            assert_eq!(f.agent, format!("node{i}"));
            assert!(!f.points.is_empty());
        }
    }

    #[test]
    fn sum_series_adds_across_agents() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(2));
        let result = run.finalize(SimTime::from_secs(2));
        let sum = result.sum_series("dev");
        // Ranks report 100, 101, 102 -> sum 303 at every poll.
        assert!(!sum.is_empty());
        for s in sum.samples() {
            assert!((s.value - 303.0).abs() < 1e-9);
        }
    }

    #[test]
    fn collective_tags_reach_every_file() {
        let mut run = launch(2);
        run.start_tag_all("phase", SimTime::from_millis(200));
        run.run_until(SimTime::from_secs(1));
        run.end_tag_all("phase", SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        for f in &result.files {
            assert_eq!(f.tags.len(), 2);
        }
    }

    #[test]
    fn write_all_creates_one_file_per_agent() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        let dir = std::env::temp_dir().join(format!("moneq-cluster-{}", std::process::id()));
        let paths = result.write_all(&dir).expect("writable temp dir");
        assert_eq!(paths.len(), 3);
        for (p, f) in paths.iter().zip(&result.files) {
            let back = OutputFile::from_path(p).expect("readable");
            assert_eq!(&back, f);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let drive = |run: &mut ClusterRun| {
            run.run_until(SimTime::from_secs(1));
            run.start_tag_all("phase", SimTime::from_secs(1));
            run.run_until(SimTime::from_secs(2));
            run.end_tag_all("phase", SimTime::from_secs(2));
        };
        let mut serial = launch(13);
        drive(&mut serial);
        let serial = serial.finalize(SimTime::from_secs(3));
        // Chunk size 3 over 13 agents: last chunk is ragged on purpose.
        let mut parallel = launch(13).with_par_agents(4).with_chunk_size(3);
        assert_eq!(parallel.par_agents(), 4);
        drive(&mut parallel);
        let parallel = parallel.finalize(SimTime::from_secs(3));
        assert_eq!(serial.files, parallel.files);
        assert_eq!(serial.overheads, parallel.overheads);
        assert_eq!(serial.dropped_records, parallel.dropped_records);
    }

    #[test]
    fn agent_series_groups_noncontiguous_timestamps() {
        // Two devices interleaved within each poll: records for "a" at the
        // same timestamp are separated by a "b" record, and one "a" record
        // arrives out of order (a late generation). All must be summed into
        // their own timestamps.
        let t1 = SimTime::from_millis(100);
        let t2 = SimTime::from_millis(200);
        let file = OutputFile {
            rank: 0,
            agent: "node0".into(),
            backends: vec!["fake".into()],
            interval_ns: 100_000_000,
            points: vec![
                DataPoint::power(t1, "a", "d", 10.0),
                DataPoint::power(t1, "b", "d", 1.0),
                DataPoint::power(t1, "a", "d", 5.0),
                DataPoint::power(t2, "a", "d", 20.0),
                DataPoint::power(t1, "a", "d", 2.0), // late, out of order
            ],
            tags: vec![],
            completeness: vec![],
        };
        let result = ClusterResult {
            files: vec![file],
            overheads: vec![OverheadReport::default()],
            dropped_records: 0,
            completeness: vec![vec![]],
        };
        let series = result.agent_series(0, "a");
        let samples = series.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].at, t1);
        assert!((samples[0].value - 17.0).abs() < 1e-12);
        assert_eq!(samples[1].at, t2);
        assert!((samples[1].value - 20.0).abs() < 1e-12);
    }

    #[test]
    fn completeness_gathered_per_rank_and_mergeable() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        assert_eq!(result.completeness.len(), 3);
        for per_rank in &result.completeness {
            assert_eq!(per_rank.len(), 1);
            assert!(per_rank[0].is_clean() && per_rank[0].reconciles());
        }
        let merged = result.completeness_by_device();
        assert_eq!(merged.len(), 1, "all ranks share the one backend name");
        assert_eq!(merged[0].device, "fake");
        let total: u64 = result.completeness.iter().map(|r| r[0].scheduled).sum();
        assert_eq!(merged[0].scheduled, total);
        assert!(merged[0].reconciles());
    }

    #[test]
    fn effective_workers_caps_by_chunks_and_host() {
        let run = launch(4).with_par_agents(64).with_chunk_size(1);
        // One chunk -> strictly serial, no pool.
        assert_eq!(run.effective_workers(1), 1);
        // Many chunks: capped by host CPUs (and never above the request).
        let w = run.effective_workers(100);
        assert!(w <= host_cpus().max(1));
        assert!((1..=64).contains(&w));
        if host_cpus() == 1 {
            assert_eq!(w, 1, "single-CPU hosts must take the serial path");
        }
    }

    #[test]
    fn worst_case_overhead_is_maximal() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        let worst = result.worst_case_overhead();
        for o in &result.overheads {
            assert!(worst.total() >= o.total());
        }
    }
}
