//! Multi-rank runs: MonEQ the way it actually runs on a machine.
//!
//! On Mira or Stampede, every agent rank (node card / node) runs its own
//! session; finalize gathers one output file per agent ("each node … within
//! the file produced for the node", §III). [`ClusterRun`] owns that
//! fan-out: it drives N sessions over the same virtual timeline, collects
//! their files, and reduces them — the machinery behind Figure 8's sum and
//! Table III's scale sweep.

use crate::backend::EnvBackend;
use crate::output::OutputFile;
use crate::overhead::OverheadReport;
use crate::session::{MonEq, MonEqConfig};
use simkit::{SimDuration, SimTime, TimeSeries};

/// A whole-machine profiling run.
pub struct ClusterRun {
    sessions: Vec<MonEq>,
}

/// The gathered result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// One output file per agent rank, in rank order.
    pub files: Vec<OutputFile>,
    /// Per-agent overhead ledgers.
    pub overheads: Vec<OverheadReport>,
    /// Total records dropped across agents.
    pub dropped_records: u64,
}

impl ClusterRun {
    /// Launch one session per backend factory. `make_backend(rank)` builds
    /// rank `rank`'s backend (each rank needs its own handle to its own
    /// node's hardware); `name(rank)` labels its output file.
    pub fn launch<B, N>(
        agents: usize,
        interval: Option<SimDuration>,
        mut make_backend: B,
        mut name: N,
        now: SimTime,
    ) -> Self
    where
        B: FnMut(usize) -> Box<dyn EnvBackend>,
        N: FnMut(usize) -> String,
    {
        assert!(agents >= 1);
        let sessions = (0..agents)
            .map(|rank| {
                MonEq::initialize(
                    rank as u32,
                    vec![make_backend(rank)],
                    MonEqConfig {
                        interval,
                        agent_name: name(rank),
                        total_agents: agents,
                        ..MonEqConfig::default()
                    },
                    now,
                )
            })
            .collect();
        ClusterRun { sessions }
    }

    /// Number of agent ranks.
    pub fn agents(&self) -> usize {
        self.sessions.len()
    }

    /// Advance every rank's timer to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        for s in &mut self.sessions {
            s.run_until(until);
        }
    }

    /// Tag a section on every rank (collective tags, the common usage).
    pub fn start_tag_all(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sessions {
            s.start_tag(label, at);
        }
    }

    /// Close a collective tag.
    pub fn end_tag_all(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sessions {
            s.end_tag(label, at);
        }
    }

    /// Finalize every rank and gather the files.
    pub fn finalize(self, now: SimTime) -> ClusterResult {
        let mut files = Vec::with_capacity(self.sessions.len());
        let mut overheads = Vec::with_capacity(self.sessions.len());
        let mut dropped = 0;
        for s in self.sessions {
            let r = s.finalize(now);
            files.push(r.file);
            overheads.push(r.overhead);
            dropped += r.dropped_records;
        }
        ClusterResult {
            files,
            overheads,
            dropped_records: dropped,
        }
    }
}

impl ClusterResult {
    /// Per-agent power series for one device/domain pair (summing the
    /// watts of matching records per poll).
    pub fn agent_series(&self, rank: usize, device: &str) -> TimeSeries {
        let file = &self.files[rank];
        let mut out = TimeSeries::new(format!("rank{rank} {device}"));
        let mut acc = 0.0;
        let mut current: Option<SimTime> = None;
        for p in file.points.iter().filter(|p| p.device == device) {
            if current != Some(p.timestamp) {
                if let Some(t) = current {
                    out.push(t, acc);
                }
                current = Some(p.timestamp);
                acc = 0.0;
            }
            acc += p.watts;
        }
        if let Some(t) = current {
            out.push(t, acc);
        }
        out
    }

    /// Machine-wide sum over all agents of one device's power (Figure 8's
    /// reduction). All agents must have polled on the same grid.
    pub fn sum_series(&self, device: &str) -> TimeSeries {
        let per_agent: Vec<TimeSeries> = (0..self.files.len())
            .map(|r| self.agent_series(r, device))
            .collect();
        TimeSeries::sum(format!("sum {device}"), &per_agent)
    }

    /// Write every agent's file into `dir` (the real finalize side effect).
    pub fn write_all(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        self.files.iter().map(|f| f.write_to(dir)).collect()
    }

    /// The Table III view: the slowest agent's ledger per phase (the
    /// numbers the paper reports are run-wide completion times).
    pub fn worst_case_overhead(&self) -> OverheadReport {
        let mut worst = self.overheads[0];
        for o in &self.overheads[1..] {
            if o.total() > worst.total() {
                worst = *o;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::DataPoint;
    use powermodel::{Metric, Platform, Support};

    struct Fake {
        rank: usize,
    }
    impl EnvBackend for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn poll(&mut self, t: SimTime) -> Vec<DataPoint> {
            vec![DataPoint::power(t, "dev", "d", 100.0 + self.rank as f64)]
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    fn launch(agents: usize) -> ClusterRun {
        ClusterRun::launch(
            agents,
            Some(SimDuration::from_millis(100)),
            |rank| Box::new(Fake { rank }),
            |rank| format!("node{rank}"),
            SimTime::ZERO,
        )
    }

    #[test]
    fn one_file_per_agent_in_rank_order() {
        let mut run = launch(4);
        run.run_until(SimTime::from_secs(2));
        let result = run.finalize(SimTime::from_secs(2));
        assert_eq!(result.files.len(), 4);
        for (i, f) in result.files.iter().enumerate() {
            assert_eq!(f.rank as usize, i);
            assert_eq!(f.agent, format!("node{i}"));
            assert!(!f.points.is_empty());
        }
    }

    #[test]
    fn sum_series_adds_across_agents() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(2));
        let result = run.finalize(SimTime::from_secs(2));
        let sum = result.sum_series("dev");
        // Ranks report 100, 101, 102 -> sum 303 at every poll.
        assert!(!sum.is_empty());
        for s in sum.samples() {
            assert!((s.value - 303.0).abs() < 1e-9);
        }
    }

    #[test]
    fn collective_tags_reach_every_file() {
        let mut run = launch(2);
        run.start_tag_all("phase", SimTime::from_millis(200));
        run.run_until(SimTime::from_secs(1));
        run.end_tag_all("phase", SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        for f in &result.files {
            assert_eq!(f.tags.len(), 2);
        }
    }

    #[test]
    fn write_all_creates_one_file_per_agent() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        let dir = std::env::temp_dir().join(format!("moneq-cluster-{}", std::process::id()));
        let paths = result.write_all(&dir).expect("writable temp dir");
        assert_eq!(paths.len(), 3);
        for (p, f) in paths.iter().zip(&result.files) {
            let back = OutputFile::from_path(p).expect("readable");
            assert_eq!(&back, f);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worst_case_overhead_is_maximal() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        let worst = result.worst_case_overhead();
        for o in &result.overheads {
            assert!(worst.total() >= o.total());
        }
    }
}
