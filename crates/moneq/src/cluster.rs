//! Multi-rank runs: MonEQ the way it actually runs on a machine.
//!
//! On Mira or Stampede, every agent rank (node card / node) runs its own
//! session; finalize gathers one output file per agent ("each node … within
//! the file produced for the node", §III). [`ClusterRun`] owns that
//! fan-out: it drives N sessions over the same virtual timeline, collects
//! their files, and reduces them — the machinery behind Figure 8's sum and
//! Table III's scale sweep.

use crate::backend::EnvBackend;
use crate::completeness::Completeness;
use crate::output::OutputFile;
use crate::overhead::OverheadReport;
use crate::plan::{CollectionPlan, Deployment, SharedReadCache};
use crate::session::{FinalizeResult, MonEq, MonEqConfig};
use simkit::{CacheStats, SimDuration, SimTime, Telemetry, TelemetryReport, TimeSeries};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Number of CPUs the host actually has (1 when it cannot be determined —
/// the safe assumption, since it keeps the run serial).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Default number of consecutive ranks dispatched to a worker as one unit.
///
/// Chunking amortizes the per-dispatch synchronization over many cheap
/// sessions; at Mira scale (49,152 nodes = 1,536 node-card agents) a worker
/// grabs a batch of ranks at a time instead of contending per rank.
pub const DEFAULT_CHUNK_SIZE: usize = 32;

/// A whole-machine profiling run.
///
/// Sessions never interact — every rank polls its own node's hardware — so
/// the fan-out is embarrassingly parallel. With [`with_par_agents`] above 1,
/// `run_until` and `finalize` drive the sessions on a **persistent worker
/// pool**: threads are spawned once, on the first parallel phase, and
/// reused across every subsequent `run_until` and the `finalize` (scoped
/// per-phase thread launches used to dominate short phases). Results are
/// still gathered in rank order, so a parallel run produces a
/// [`ClusterResult`] identical to a serial run of the same seed and agents.
///
/// [`with_par_agents`]: ClusterRun::with_par_agents
pub struct ClusterRun {
    sessions: Vec<MonEq>,
    par_agents: usize,
    chunk_size: usize,
    /// Host-CPU cap for the pool width (defaults to [`host_cpus`];
    /// overridable via [`ClusterRun::with_host_cpus`] for tests/benches).
    cpus_cap: usize,
    plan: CollectionPlan,
    /// One shared read cache per sharing domain (empty for the per-agent
    /// plan). Arcs are shared with the domain's sessions.
    caches: Vec<Arc<SharedReadCache>>,
    /// The persistent worker pool, spawned lazily by the first parallel
    /// phase and kept (idle between phases) until the run is dropped.
    pool: Option<WorkerPool>,
    sched: SchedStats,
}

/// Wall-clock worker-pool scheduling diagnostics for a cluster run.
///
/// Unlike everything in a [`TelemetryReport`], these numbers come from the
/// *host* clock and the racy order in which workers claim chunks, so they
/// are **not deterministic** and are deliberately kept out of the
/// determinism-tested telemetry: two runs of the same seed agree on every
/// counter and histogram but may divide chunks among workers differently.
#[derive(Clone, Debug, Default)]
pub struct SchedStats {
    /// Widest worker pool used by any phase (1 = everything ran serial).
    pub workers: usize,
    /// Dispatch units (chunks of consecutive ranks) processed, totalled
    /// over every `run_until`/`finalize` phase.
    pub chunks: usize,
    /// Chunks each worker claimed off the shared index, per worker slot.
    pub claimed_per_worker: Vec<u64>,
    /// Wall-clock time each worker spent driving sessions, per worker slot.
    pub busy_per_worker: Vec<Duration>,
}

impl SchedStats {
    /// Fold one phase's stats into the run's running totals. Each
    /// per-worker vector is resized against its *own* counterpart — the
    /// two can legitimately differ in length, and resizing `busy` from
    /// `claimed`'s length used to silently truncate the longer one.
    fn absorb(&mut self, other: &SchedStats) {
        self.workers = self.workers.max(other.workers);
        self.chunks += other.chunks;
        if self.claimed_per_worker.len() < other.claimed_per_worker.len() {
            self.claimed_per_worker
                .resize(other.claimed_per_worker.len(), 0);
        }
        if self.busy_per_worker.len() < other.busy_per_worker.len() {
            self.busy_per_worker
                .resize(other.busy_per_worker.len(), Duration::ZERO);
        }
        for (a, b) in self
            .claimed_per_worker
            .iter_mut()
            .zip(&other.claimed_per_worker)
        {
            *a += b;
        }
        for (a, b) in self.busy_per_worker.iter_mut().zip(&other.busy_per_worker) {
            *a += *b;
        }
    }
}

/// The gathered result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// One output file per agent rank, in rank order.
    pub files: Vec<OutputFile>,
    /// Per-agent overhead ledgers.
    pub overheads: Vec<OverheadReport>,
    /// Total records dropped across agents.
    pub dropped_records: u64,
    /// Per-rank completeness reports (rank → one entry per backend), in
    /// rank order like [`ClusterResult::files`].
    pub completeness: Vec<Vec<Completeness>>,
    /// Per-rank telemetry registry shards, in rank order. Each is moved
    /// whole out of its session at finalize; string-keyed
    /// [`TelemetryReport`]s are materialized only on demand
    /// ([`simkit::Telemetry::report`] per rank,
    /// [`ClusterResult::telemetry_merged`] run-wide), so the gather path
    /// never pays for them. All empty unless the sessions were launched
    /// with [`MonEqConfig::telemetry`] set. Deterministic: serial and
    /// parallel drives produce identical shards.
    pub telemetry: Vec<Telemetry>,
    /// Exact shared-read cache ledger, folded over every sharing domain.
    /// All zero unless a collection plan was active
    /// ([`ClusterRun::with_collection_plan`]). Deterministic: domain
    /// chunks are driven in rank order, so serial and parallel runs agree
    /// on every count.
    pub cache: CacheStats,
    /// Wall-clock scheduling diagnostics (see [`SchedStats`] — these are
    /// *not* deterministic and excluded from serial == parallel equality).
    pub sched: SchedStats,
}

/// Render a caught panic payload as text (the common `&str` / `String`
/// payloads verbatim; anything else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Re-raise the first (lowest-rank) caught rank panic, with the rank id
/// attached. No-op when nothing panicked.
fn reraise_rank_panics(mut panics: Vec<(u32, String)>, phase: &str) {
    panics.sort();
    if let Some((rank, msg)) = panics.first() {
        panic!("rank {rank} panicked during cluster {phase}: {msg}");
    }
}

/// Which phase a [`PhaseJob`] drives.
#[derive(Clone, Copy)]
enum PhaseKind {
    /// Advance every session to the instant.
    Run(SimTime),
    /// Finalize every session at the instant.
    Finalize(SimTime),
}

impl PhaseKind {
    fn name(self) -> &'static str {
        match self {
            PhaseKind::Run(_) => "run_until",
            PhaseKind::Finalize(_) => "finalize",
        }
    }
}

/// One chunk of consecutive ranks, parked in a mutex so exactly one worker
/// drives it. `results` is filled in rank order by finalize phases.
struct PhaseSlot {
    sessions: Vec<MonEq>,
    results: Vec<FinalizeResult>,
}

/// One phase's worth of work, shared between the dispatcher and the pool
/// workers for the duration of a single [`WorkerPool::run`].
struct PhaseJob {
    kind: PhaseKind,
    /// Workers with `wid >= active_workers` sit this phase out: the pool
    /// may be wider than the phase (left over from an earlier, wider
    /// phase), and a phase must never exceed its own effective width.
    active_workers: usize,
    slots: Vec<Mutex<PhaseSlot>>,
    /// Next unclaimed slot index.
    next: AtomicUsize,
    /// Set on the first caught rank panic; stops every worker early.
    abort: AtomicBool,
    /// Caught rank panics, re-raised by the dispatcher after gathering.
    panics: Mutex<Vec<(u32, String)>>,
    /// Per-worker (chunks claimed, busy wall-clock), indexed by worker id;
    /// sized to the pool's width, so idle extras report zeros.
    stats: Vec<Mutex<(u64, Duration)>>,
}

impl PhaseJob {
    /// Worker body: claim chunk indices off `next` and drive each claimed
    /// slot to completion, bailing out (and flagging `abort`) on the first
    /// caught rank panic.
    fn work(&self, wid: usize) {
        if wid >= self.active_workers {
            return;
        }
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = self.slots.get(i) else {
                return;
            };
            let start = Instant::now();
            // Uncontended: each index is claimed exactly once, so
            // recovering a poisoned guard cannot expose torn state from a
            // concurrent writer — only this worker's own already-caught
            // panic could have poisoned it.
            let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            let PhaseSlot { sessions, results } = &mut *guard;
            match self.kind {
                PhaseKind::Run(until) => {
                    for s in sessions.iter_mut() {
                        let rank = s.rank();
                        if let Err(p) = catch_unwind(AssertUnwindSafe(|| s.run_until(until))) {
                            self.record_panic(rank, p);
                            return;
                        }
                    }
                }
                PhaseKind::Finalize(now) => {
                    results.reserve_exact(sessions.len());
                    for s in sessions.drain(..) {
                        let rank = s.rank();
                        match catch_unwind(AssertUnwindSafe(|| s.finalize(now))) {
                            Ok(r) => results.push(r),
                            Err(p) => {
                                self.record_panic(rank, p);
                                return;
                            }
                        }
                    }
                }
            }
            drop(guard);
            let mut st = self.stats[wid]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.0 += 1;
            st.1 += start.elapsed();
        }
    }

    /// Record one caught rank panic and tell every worker to stop early.
    fn record_panic(&self, rank: u32, payload: Box<dyn std::any::Any + Send>) {
        self.abort.store(true, Ordering::Relaxed);
        self.panics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((rank, panic_message(payload)));
    }
}

/// State a [`WorkerPool`] shares with its worker threads.
struct PoolShared {
    cell: Mutex<PoolCell>,
    /// Signalled when a new job is posted (or on shutdown).
    start: Condvar,
    /// Signalled by the last worker to finish the current job.
    done: Condvar,
}

/// The pool's condvar-guarded state.
struct PoolCell {
    /// Bumped once per posted job; workers track the last value they saw,
    /// so a worker that re-checks after finishing cannot re-run a job or
    /// miss one posted while it was still draining.
    seq: u64,
    /// The in-flight job, if any.
    job: Option<Arc<PhaseJob>>,
    /// Workers that have not yet finished the in-flight job.
    active: usize,
    /// Set once, by [`WorkerPool::drop`]; workers exit on seeing it.
    shutdown: bool,
}

/// The persistent worker pool behind parallel cluster phases.
///
/// Threads are spawned once and parked on a condvar between phases;
/// [`WorkerPool::run`] posts one [`PhaseJob`] and blocks until every
/// worker has drained it. Dropping the pool joins the threads.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

fn worker_main(shared: &PoolShared, wid: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut cell = shared.cell.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if cell.shutdown {
                    return;
                }
                if cell.seq != seen {
                    break;
                }
                cell = shared
                    .start
                    .wait(cell)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            seen = cell.seq;
            cell.job.clone()
        };
        if let Some(job) = job {
            // Worker-level safety net: `work` already catches session
            // panics, but nothing unexpected may leave `active` stuck with
            // the dispatcher waiting forever. The job Arc is dropped
            // before the decrement so the dispatcher's post-run teardown
            // never races a worker still holding a reference.
            let _ = catch_unwind(AssertUnwindSafe(|| job.work(wid)));
            drop(job);
        }
        let mut cell = shared.cell.lock().unwrap_or_else(PoisonError::into_inner);
        cell.active -= 1;
        if cell.active == 0 {
            shared.done.notify_all();
        }
    }
}

impl WorkerPool {
    /// Spawn `width` parked worker threads.
    fn spawn(width: usize) -> Self {
        let shared = Arc::new(PoolShared {
            cell: Mutex::new(PoolCell {
                seq: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..width)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_main(&shared, wid))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    fn width(&self) -> usize {
        self.handles.len()
    }

    /// Post one job and block until every worker has finished it.
    fn run(&self, job: &Arc<PhaseJob>) {
        let mut cell = self
            .shared
            .cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cell.job = Some(Arc::clone(job));
        cell.seq = cell.seq.wrapping_add(1);
        cell.active = self.handles.len();
        self.shared.start.notify_all();
        while cell.active > 0 {
            cell = self
                .shared
                .done
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
        cell.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut cell = self
                .shared
                .cell
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            cell.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl ClusterRun {
    /// Launch one session per backend factory. `make_backend(rank)` builds
    /// rank `rank`'s backend (each rank needs its own handle to its own
    /// node's hardware); `name(rank)` labels its output file.
    pub fn launch<B, N>(
        agents: usize,
        interval: Option<SimDuration>,
        make_backend: B,
        name: N,
        now: SimTime,
    ) -> Self
    where
        B: FnMut(usize) -> Box<dyn EnvBackend>,
        N: FnMut(usize) -> String,
    {
        let base = MonEqConfig {
            interval,
            ..MonEqConfig::default()
        };
        Self::launch_with(agents, make_backend, name, now, base)
    }

    /// Launch with an explicit base configuration (retry policy, record
    /// capacity, …). Per-rank `agent_name` and `total_agents` are still
    /// filled in here; the rest of `base` applies to every rank.
    pub fn launch_with<B, N>(
        agents: usize,
        mut make_backend: B,
        mut name: N,
        now: SimTime,
        base: MonEqConfig,
    ) -> Self
    where
        B: FnMut(usize) -> Box<dyn EnvBackend>,
        N: FnMut(usize) -> String,
    {
        assert!(agents >= 1);
        let sessions = (0..agents)
            .map(|rank| {
                // `iter::once` instead of a one-element `Vec`: at 49k ranks
                // the intermediate allocation is measurable launch time.
                MonEq::initialize_from(
                    rank as u32,
                    std::iter::once(make_backend(rank)),
                    MonEqConfig {
                        agent_name: name(rank),
                        total_agents: agents,
                        ..base.clone()
                    },
                    now,
                )
            })
            .collect();
        ClusterRun {
            sessions,
            par_agents: 1,
            chunk_size: DEFAULT_CHUNK_SIZE,
            cpus_cap: host_cpus(),
            plan: CollectionPlan::per_agent(),
            caches: Vec::new(),
            pool: None,
            sched: SchedStats::default(),
        }
    }

    /// Activate a batched collection plan: `plan.domain_size()` consecutive
    /// ranks share one [`SharedReadCache`], so each generation is fetched
    /// once per domain (by whichever rank reaches it first) and distributed
    /// to co-resident ranks at zero marginal charged cost.
    ///
    /// The caller must make the domains match the hardware the ranks are
    /// attached to — every rank of a domain has to read the *same* device
    /// (node card, socket, card), or a distributed value would be wrong
    /// for some ranks. Outputs are byte-identical with the plan on or off;
    /// only the charged collection overhead changes.
    ///
    /// Dispatch chunks are aligned up to whole domains, so a parallel run
    /// drives each domain's ranks on one worker in rank order — leader
    /// election stays deterministic and the domain's cache lock
    /// uncontended.
    pub fn with_collection_plan(mut self, plan: CollectionPlan) -> Self {
        self.plan = plan;
        self.caches.clear();
        // Deployment before sharing: a remote leader's fetch cost is the
        // wire round-trip, paid once per domain like any access path.
        if let Deployment::Remote(link) = plan.deployment() {
            for session in &mut self.sessions {
                session.deploy_remote(link);
            }
        }
        if plan.is_shared() {
            self.caches = (0..plan.domains(self.sessions.len()))
                .map(|_| Arc::new(SharedReadCache::new()))
                .collect();
            for (rank, session) in self.sessions.iter_mut().enumerate() {
                session.attach_shared_cache(Arc::clone(&self.caches[plan.domain_of(rank)]));
            }
        }
        self
    }

    /// The active collection plan (per-agent unless
    /// [`ClusterRun::with_collection_plan`] changed it).
    pub fn collection_plan(&self) -> CollectionPlan {
        self.plan
    }

    /// Attach a per-rank control hook to every session that gets one
    /// (`make(rank)` returning `None` leaves that rank open-loop).
    ///
    /// Hooks must be rank-local: each one may only touch plant state owned
    /// by its own rank, or the serial == parallel guarantee is forfeit.
    /// Call before the first `run_until`; fires already driven stay
    /// open-loop.
    pub fn attach_control_hooks<F>(&mut self, mut make: F)
    where
        F: FnMut(usize) -> Option<Box<dyn crate::control::ControlHook>>,
    {
        for (rank, session) in self.sessions.iter_mut().enumerate() {
            if let Some(hook) = make(rank) {
                session.attach_control(hook);
            }
        }
    }

    /// Set the worker-pool width for `run_until`/`finalize`. `1` (the
    /// default) keeps the run fully serial on the calling thread. The
    /// effective pool is additionally capped by the host-CPU cap
    /// ([`host_cpus`] unless [`ClusterRun::with_host_cpus`] overrode it) —
    /// asking for more workers than the host has cores only adds
    /// scheduling overhead (the 49k-agent regression this cap fixed), and
    /// on a single-CPU host the run stays on the serial path entirely.
    pub fn with_par_agents(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker required");
        self.par_agents = workers;
        self
    }

    /// Set how many consecutive ranks a worker claims per dispatch.
    pub fn with_chunk_size(mut self, ranks: usize) -> Self {
        assert!(ranks >= 1, "chunk size must be positive");
        self.chunk_size = ranks;
        self
    }

    /// Override the host-CPU cap used when sizing the worker pool
    /// (defaults to [`host_cpus`]). A testing and benchmarking hook: it
    /// lets determinism suites exercise the real pool even on a
    /// single-CPU host, where the default cap would route every phase
    /// down the serial path. Production callers should leave it alone —
    /// oversubscribing the host only adds scheduling overhead.
    pub fn with_host_cpus(mut self, cpus: usize) -> Self {
        assert!(cpus >= 1, "at least one CPU required");
        self.cpus_cap = cpus;
        self
    }

    /// The configured worker-pool width.
    pub fn par_agents(&self) -> usize {
        self.par_agents
    }

    /// Number of agent ranks.
    pub fn agents(&self) -> usize {
        self.sessions.len()
    }

    /// Wall-clock scheduling diagnostics accumulated so far (chunks
    /// claimed and busy time per worker across every `run_until` phase).
    pub fn sched_stats(&self) -> &SchedStats {
        &self.sched
    }

    /// The chunk size actually used for dispatch: the configured size,
    /// rounded up to a whole number of sharing domains when a collection
    /// plan is active. A domain split across two workers would let ranks
    /// of one domain race on leader election, making the charged
    /// overheads depend on scheduling; whole-domain chunks keep parallel
    /// runs identical to serial ones.
    fn effective_chunk_size(&self) -> usize {
        let chunk = self.chunk_size.max(1);
        let domain = self.plan.domain_size();
        if domain <= 1 {
            chunk
        } else {
            chunk.div_ceil(domain) * domain
        }
    }

    /// Worker count actually used for `n_chunks` dispatch units: the
    /// requested width, capped by the chunk count and the host-CPU cap
    /// ([`host_cpus`] unless [`ClusterRun::with_host_cpus`] overrode it).
    /// Returns 1 (serial path, no pool at all) when the cap is a single
    /// CPU or there is at most one chunk — spawning workers then only adds
    /// overhead with zero possible speedup.
    fn effective_workers(&self, n_chunks: usize) -> usize {
        if n_chunks < 2 {
            return 1;
        }
        self.par_agents.min(n_chunks).min(self.cpus_cap)
    }

    /// Drive one phase of the run on the persistent pool, spawning the
    /// pool first (or replacing it with a wider one) if this phase needs
    /// more workers than are parked. Sessions are drained into per-chunk
    /// slots, processed by whichever worker claims each index, and
    /// restored — with any finalize results — in chunk order, so rank
    /// order survives and a rank panic re-raises only after every session
    /// is back in place.
    fn run_phase(
        &mut self,
        kind: PhaseKind,
        chunk_size: usize,
        workers: usize,
    ) -> Vec<FinalizeResult> {
        let mut slots = Vec::with_capacity(self.sessions.len().div_ceil(chunk_size));
        {
            let mut it = self.sessions.drain(..);
            loop {
                let chunk: Vec<MonEq> = it.by_ref().take(chunk_size).collect();
                if chunk.is_empty() {
                    break;
                }
                slots.push(Mutex::new(PhaseSlot {
                    sessions: chunk,
                    results: Vec::new(),
                }));
            }
        }
        let n_chunks = slots.len();
        if self.pool.as_ref().is_none_or(|p| p.width() < workers) {
            // Join the old (narrower) pool before spawning the wider one.
            self.pool = None;
            self.pool = Some(WorkerPool::spawn(workers));
        }
        let pool = self.pool.as_ref().expect("pool ensured above");
        let job = Arc::new(PhaseJob {
            kind,
            active_workers: workers,
            slots,
            next: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            panics: Mutex::new(Vec::new()),
            stats: (0..pool.width())
                .map(|_| Mutex::new((0, Duration::ZERO)))
                .collect(),
        });
        pool.run(&job);
        // The pool has drained: every worker dropped its job Arc before
        // reporting done, so all these locks are uncontended.
        let (claimed, busy) = job
            .stats
            .iter()
            .map(|m| *m.lock().unwrap_or_else(PoisonError::into_inner))
            .unzip();
        self.sched.absorb(&SchedStats {
            workers,
            chunks: n_chunks,
            claimed_per_worker: claimed,
            busy_per_worker: busy,
        });
        let mut results = Vec::new();
        for slot in &job.slots {
            let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            self.sessions.append(&mut guard.sessions);
            results.append(&mut guard.results);
        }
        let panics =
            std::mem::take(&mut *job.panics.lock().unwrap_or_else(PoisonError::into_inner));
        reraise_rank_panics(panics, kind.name());
        results
    }

    /// Advance every rank's timer to `until`.
    ///
    /// With `par_agents > 1` the sessions advance concurrently on the
    /// run's persistent worker pool (spawned on the first parallel phase,
    /// reused by every later one); each session still observes exactly
    /// the serial event sequence, because no state is shared between
    /// ranks. A panic inside one rank is caught before it can unwind
    /// through a chunk's mutex guard, recorded with its rank id, and
    /// re-raised after the pool drains — so the caller sees the original
    /// rank panic, never a sibling worker's opaque PoisonError.
    pub fn run_until(&mut self, until: SimTime) {
        let chunk_size = self.effective_chunk_size();
        let n_chunks = self.sessions.len().div_ceil(chunk_size);
        let workers = self.effective_workers(n_chunks);
        if workers <= 1 {
            let start = Instant::now();
            for s in &mut self.sessions {
                s.run_until(until);
            }
            self.sched.absorb(&SchedStats {
                workers: 1,
                chunks: n_chunks,
                claimed_per_worker: vec![n_chunks as u64],
                busy_per_worker: vec![start.elapsed()],
            });
            self.prune_caches(until);
            return;
        }
        self.run_phase(PhaseKind::Run(until), chunk_size, workers);
        self.prune_caches(until);
    }

    /// Drop cached generations every rank has now been driven past. Later
    /// polls are strictly after `until`, so at worst they fall in the
    /// generation containing `until` — which the prune keeps.
    fn prune_caches(&self, until: SimTime) {
        for cache in &self.caches {
            cache.prune_before(until);
        }
    }

    /// Read access to every rank's session, in rank order.
    ///
    /// The monitoring daemon walks this between [`ClusterRun::run_until`]
    /// steps to ingest each rank's newly appended records (see
    /// [`MonEq::collected`]) and to answer staleness queries from the live
    /// ledgers (see [`MonEq::completeness_so_far`]).
    pub fn sessions(&self) -> &[MonEq] {
        &self.sessions
    }

    /// Tag a section on every rank (collective tags, the common usage).
    pub fn start_tag_all(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sessions {
            s.start_tag(label, at);
        }
    }

    /// Close a collective tag.
    pub fn end_tag_all(&mut self, label: &str, at: SimTime) {
        for s in &mut self.sessions {
            s.end_tag(label, at);
        }
    }

    /// Finalize every rank and gather the files.
    ///
    /// Finalization runs on the same worker pool as `run_until` when
    /// `par_agents > 1`, but files and overheads are always reduced in rank
    /// order, so the result is byte-identical to a serial finalize.
    pub fn finalize(mut self, now: SimTime) -> ClusterResult {
        let n = self.sessions.len();
        let chunk_size = self.effective_chunk_size();
        let n_chunks = n.div_ceil(chunk_size);
        let workers = self.effective_workers(n_chunks);
        let results: Vec<FinalizeResult> = if workers <= 1 {
            let start = Instant::now();
            let results = self
                .sessions
                .drain(..)
                .map(|s| s.finalize(now))
                .collect::<Vec<_>>();
            self.sched.absorb(&SchedStats {
                workers: 1,
                chunks: n_chunks,
                claimed_per_worker: vec![n_chunks as u64],
                busy_per_worker: vec![start.elapsed()],
            });
            results
        } else {
            let results = self.run_phase(PhaseKind::Finalize(now), chunk_size, workers);
            // The run is over — join the pool now, not at drop time.
            self.pool = None;
            results
        };
        let mut files = Vec::with_capacity(n);
        let mut overheads = Vec::with_capacity(n);
        let mut completeness = Vec::with_capacity(n);
        let mut telemetry = Vec::with_capacity(n);
        let mut dropped = 0;
        for r in results {
            files.push(r.file);
            overheads.push(r.overhead);
            completeness.push(r.completeness);
            telemetry.push(r.telemetry);
            dropped += r.dropped_records;
        }
        let mut cache = CacheStats::default();
        for c in &self.caches {
            cache.absorb(&c.stats());
        }
        ClusterResult {
            files,
            overheads,
            dropped_records: dropped,
            completeness,
            telemetry,
            cache,
            sched: self.sched,
        }
    }
}

impl ClusterResult {
    /// Per-agent power series for one device/domain pair (summing the
    /// watts of matching records per poll timestamp).
    ///
    /// Records are grouped by timestamp wherever they appear in the file —
    /// a backend that interleaves devices within a poll, or reports a late
    /// generation out of order, still contributes to the right instant.
    pub fn agent_series(&self, rank: usize, device: &str) -> TimeSeries {
        let file = &self.files[rank];
        let mut sums: std::collections::BTreeMap<SimTime, f64> = std::collections::BTreeMap::new();
        for p in file.points.iter().filter(|p| p.device == device) {
            *sums.entry(p.timestamp).or_insert(0.0) += p.watts;
        }
        let mut out = TimeSeries::new(format!("rank{rank} {device}"));
        for (t, watts) in sums {
            out.push(t, watts);
        }
        out
    }

    /// Machine-wide sum over all agents of one device's power (Figure 8's
    /// reduction). All agents must have polled on the same grid.
    pub fn sum_series(&self, device: &str) -> TimeSeries {
        let per_agent: Vec<TimeSeries> = (0..self.files.len())
            .map(|r| self.agent_series(r, device))
            .collect();
        TimeSeries::sum(format!("sum {device}"), &per_agent)
    }

    /// Write every agent's file into `dir` (the real finalize side effect).
    pub fn write_all(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        self.files.iter().map(|f| f.write_to(dir)).collect()
    }

    /// The run-wide completeness report: every rank's per-device counters
    /// folded together by device (backend) name, in first-seen order. The
    /// counters still reconcile after merging — sums of exact invariants
    /// are exact.
    pub fn completeness_by_device(&self) -> Vec<Completeness> {
        let mut merged: Vec<Completeness> = Vec::new();
        for per_rank in &self.completeness {
            for c in per_rank {
                match merged.iter_mut().find(|m| m.device == c.device) {
                    Some(m) => m.absorb(c),
                    None => merged.push(c.clone()),
                }
            }
        }
        merged
    }

    /// The run-wide telemetry report: every rank's shard snapshotted and
    /// folded together with [`TelemetryReport::absorb`], exactly like
    /// [`ClusterResult::completeness_by_device`] — counters and histogram
    /// buckets are exact sums, so the merge is order-independent. This is
    /// where per-rank reports are first materialized; the collection and
    /// gather paths never build them.
    pub fn telemetry_merged(&self) -> TelemetryReport {
        let mut merged = TelemetryReport::default();
        for t in &self.telemetry {
            merged.absorb(&t.report());
        }
        merged
    }

    /// The Table III view: the slowest agent's ledger per phase (the
    /// numbers the paper reports are run-wide completion times).
    pub fn worst_case_overhead(&self) -> OverheadReport {
        let mut worst = self.overheads[0];
        for o in &self.overheads[1..] {
            if o.total() > worst.total() {
                worst = *o;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reading::DataPoint;
    use powermodel::{Metric, Platform, Support};

    struct Fake {
        rank: usize,
    }
    impl EnvBackend for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<crate::backend::Poll, crate::backend::ReadError> {
            Ok(crate::backend::Poll::complete(vec![DataPoint::power(
                t,
                "dev",
                "d",
                100.0 + self.rank as f64,
            )]))
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    fn launch(agents: usize) -> ClusterRun {
        ClusterRun::launch(
            agents,
            Some(SimDuration::from_millis(100)),
            |rank| Box::new(Fake { rank }),
            |rank| format!("node{rank}"),
            SimTime::ZERO,
        )
    }

    #[test]
    fn one_file_per_agent_in_rank_order() {
        let mut run = launch(4);
        run.run_until(SimTime::from_secs(2));
        let result = run.finalize(SimTime::from_secs(2));
        assert_eq!(result.files.len(), 4);
        for (i, f) in result.files.iter().enumerate() {
            assert_eq!(f.rank as usize, i);
            assert_eq!(f.agent, format!("node{i}"));
            assert!(!f.points.is_empty());
        }
    }

    #[test]
    fn sum_series_adds_across_agents() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(2));
        let result = run.finalize(SimTime::from_secs(2));
        let sum = result.sum_series("dev");
        // Ranks report 100, 101, 102 -> sum 303 at every poll.
        assert!(!sum.is_empty());
        for s in sum.samples() {
            assert!((s.value - 303.0).abs() < 1e-9);
        }
    }

    #[test]
    fn collective_tags_reach_every_file() {
        let mut run = launch(2);
        run.start_tag_all("phase", SimTime::from_millis(200));
        run.run_until(SimTime::from_secs(1));
        run.end_tag_all("phase", SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        for f in &result.files {
            assert_eq!(f.tags.len(), 2);
        }
    }

    #[test]
    fn write_all_creates_one_file_per_agent() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        let dir = std::env::temp_dir().join(format!("moneq-cluster-{}", std::process::id()));
        let paths = result.write_all(&dir).expect("writable temp dir");
        assert_eq!(paths.len(), 3);
        for (p, f) in paths.iter().zip(&result.files) {
            let back = OutputFile::from_path(p).expect("readable");
            assert_eq!(&back, f);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        let drive = |run: &mut ClusterRun| {
            run.run_until(SimTime::from_secs(1));
            run.start_tag_all("phase", SimTime::from_secs(1));
            run.run_until(SimTime::from_secs(2));
            run.end_tag_all("phase", SimTime::from_secs(2));
        };
        let mut serial = launch(13);
        drive(&mut serial);
        let serial = serial.finalize(SimTime::from_secs(3));
        // Chunk size 3 over 13 agents: last chunk is ragged on purpose.
        // `with_host_cpus(4)` forces the real pool even on a 1-CPU host.
        let mut parallel = launch(13)
            .with_par_agents(4)
            .with_chunk_size(3)
            .with_host_cpus(4);
        assert_eq!(parallel.par_agents(), 4);
        drive(&mut parallel);
        let parallel = parallel.finalize(SimTime::from_secs(3));
        assert_eq!(serial.files, parallel.files);
        assert_eq!(serial.overheads, parallel.overheads);
        assert_eq!(serial.dropped_records, parallel.dropped_records);
    }

    #[test]
    fn agent_series_groups_noncontiguous_timestamps() {
        // Two devices interleaved within each poll: records for "a" at the
        // same timestamp are separated by a "b" record, and one "a" record
        // arrives out of order (a late generation). All must be summed into
        // their own timestamps.
        let t1 = SimTime::from_millis(100);
        let t2 = SimTime::from_millis(200);
        let file = OutputFile {
            rank: 0,
            agent: "node0".into(),
            backends: vec!["fake".into()],
            interval_ns: 100_000_000,
            points: vec![
                DataPoint::power(t1, "a", "d", 10.0),
                DataPoint::power(t1, "b", "d", 1.0),
                DataPoint::power(t1, "a", "d", 5.0),
                DataPoint::power(t2, "a", "d", 20.0),
                DataPoint::power(t1, "a", "d", 2.0), // late, out of order
            ]
            .into(),
            tags: vec![],
            completeness: vec![],
        };
        let result = ClusterResult {
            files: vec![file],
            overheads: vec![OverheadReport::default()],
            dropped_records: 0,
            completeness: vec![vec![]],
            telemetry: vec![Telemetry::default()],
            cache: CacheStats::default(),
            sched: SchedStats::default(),
        };
        let series = result.agent_series(0, "a");
        let samples = series.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].at, t1);
        assert!((samples[0].value - 17.0).abs() < 1e-12);
        assert_eq!(samples[1].at, t2);
        assert!((samples[1].value - 20.0).abs() < 1e-12);
    }

    #[test]
    fn completeness_gathered_per_rank_and_mergeable() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        assert_eq!(result.completeness.len(), 3);
        for per_rank in &result.completeness {
            assert_eq!(per_rank.len(), 1);
            assert!(per_rank[0].is_clean() && per_rank[0].reconciles());
        }
        let merged = result.completeness_by_device();
        assert_eq!(merged.len(), 1, "all ranks share the one backend name");
        assert_eq!(merged[0].device, "fake");
        let total: u64 = result.completeness.iter().map(|r| r[0].scheduled).sum();
        assert_eq!(merged[0].scheduled, total);
        assert!(merged[0].reconciles());
    }

    #[test]
    fn effective_workers_caps_by_chunks_and_host() {
        let run = launch(4).with_par_agents(64).with_chunk_size(1);
        // One chunk -> strictly serial, no pool.
        assert_eq!(run.effective_workers(1), 1);
        // Many chunks: capped by host CPUs (and never above the request).
        let w = run.effective_workers(100);
        assert!(w <= host_cpus().max(1));
        assert!((1..=64).contains(&w));
        if host_cpus() == 1 {
            assert_eq!(w, 1, "single-CPU hosts must take the serial path");
        }
        // The cap override replaces the detected CPU count exactly.
        let run = launch(4)
            .with_par_agents(64)
            .with_chunk_size(1)
            .with_host_cpus(8);
        assert_eq!(run.effective_workers(100), 8);
        assert_eq!(run.effective_workers(5), 5, "chunk count still caps");
        assert_eq!(run.effective_workers(1), 1);
    }

    #[test]
    fn sched_stats_absorb_handles_unequal_phase_widths() {
        // Regression: the busy-time resize used to be gated on the
        // *claimed* vector's length, so absorbing a phase whose busy
        // vector was the longer of the two silently dropped the extra
        // workers' busy time off the end.
        let ms = Duration::from_millis;
        let mut total = SchedStats::default();
        total.absorb(&SchedStats {
            workers: 2,
            chunks: 2,
            claimed_per_worker: vec![2, 0],
            busy_per_worker: vec![ms(4), ms(6)],
        });
        total.absorb(&SchedStats {
            workers: 1,
            chunks: 1,
            claimed_per_worker: vec![1],
            busy_per_worker: vec![ms(5), ms(7), ms(9)],
        });
        assert_eq!(total.workers, 2);
        assert_eq!(total.chunks, 3);
        assert_eq!(total.claimed_per_worker, vec![3, 0]);
        assert_eq!(total.busy_per_worker, vec![ms(9), ms(13), ms(9)]);
    }

    #[test]
    fn persistent_pool_is_reused_across_phases_and_stays_exact() {
        // The pool spawns once, on the first parallel phase, and drives
        // every later phase; repeated run_until calls plus finalize on the
        // reused pool must match a fresh serial run byte for byte.
        let mut serial = launch(13);
        for step in 1..=4 {
            serial.run_until(SimTime::from_secs(step));
        }
        let serial = serial.finalize(SimTime::from_secs(5));
        let mut pooled = launch(13)
            .with_par_agents(4)
            .with_chunk_size(3)
            .with_host_cpus(4);
        for step in 1..=4 {
            pooled.run_until(SimTime::from_secs(step));
            assert!(pooled.pool.is_some(), "pool must persist between phases");
            assert_eq!(pooled.pool.as_ref().map(WorkerPool::width), Some(4));
        }
        let pooled = pooled.finalize(SimTime::from_secs(5));
        assert_eq!(serial.files, pooled.files);
        assert_eq!(serial.overheads, pooled.overheads);
        assert_eq!(serial.dropped_records, pooled.dropped_records);
        let render =
            |r: &ClusterResult| -> Vec<String> { r.files.iter().map(|f| f.render()).collect() };
        assert_eq!(render(&serial), render(&pooled));
        assert_eq!(pooled.sched.workers, 4);
        let claimed: u64 = pooled.sched.claimed_per_worker.iter().sum();
        assert_eq!(claimed as usize, pooled.sched.chunks, "every chunk claimed");
    }

    #[test]
    fn pool_widens_when_a_later_phase_needs_more_workers() {
        let mut run = launch(12)
            .with_par_agents(2)
            .with_chunk_size(1)
            .with_host_cpus(8);
        run.run_until(SimTime::from_secs(1));
        assert_eq!(run.pool.as_ref().map(WorkerPool::width), Some(2));
        // Widen the request mid-run (directly: the builder consumes self).
        run.par_agents = 6;
        run.run_until(SimTime::from_secs(2));
        assert_eq!(run.pool.as_ref().map(WorkerPool::width), Some(6));
        let result = run.finalize(SimTime::from_secs(3));
        assert_eq!(result.files.len(), 12);
        assert_eq!(result.sched.workers, 6);
    }

    /// A backend that panics on one rank once virtual time reaches `after`.
    struct PanicAt {
        rank: usize,
        bad_rank: usize,
        after: SimTime,
    }
    impl EnvBackend for PanicAt {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<crate::backend::Poll, crate::backend::ReadError> {
            if self.rank == self.bad_rank && t >= self.after {
                panic!("injected failure on rank {}", self.rank);
            }
            Ok(crate::backend::Poll::complete(vec![DataPoint::power(
                t, "dev", "d", 1.0,
            )]))
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    fn launch_panicky(agents: usize, bad_rank: usize, after: SimTime) -> ClusterRun {
        ClusterRun::launch(
            agents,
            Some(SimDuration::from_millis(100)),
            move |rank| {
                Box::new(PanicAt {
                    rank,
                    bad_rank,
                    after,
                })
            },
            |rank| format!("node{rank}"),
            SimTime::ZERO,
        )
        .with_par_agents(4)
        .with_chunk_size(1)
        .with_host_cpus(4)
    }

    #[test]
    fn parallel_panic_reports_original_rank_not_poison() {
        // Regression: a panic in one rank's run_until used to poison the
        // chunk mutex and surface in sibling workers as an opaque
        // PoisonError panic; the caller must see rank 5's own message.
        let mut run = launch_panicky(8, 5, SimTime::ZERO);
        let err = catch_unwind(AssertUnwindSafe(|| run.run_until(SimTime::from_secs(1))))
            .expect_err("rank 5 must panic");
        let msg = panic_message(err);
        assert!(msg.contains("injected failure on rank 5"), "{msg}");
        assert!(!msg.contains("PoisonError"), "{msg}");
        assert!(
            msg.contains("rank 5 panicked during cluster run_until"),
            "{msg}"
        );
    }

    #[test]
    fn parallel_finalize_panic_reports_original_rank() {
        // The panic only trips during the final drive inside finalize.
        let mut run = launch_panicky(8, 3, SimTime::from_millis(1_500));
        run.run_until(SimTime::from_secs(1)); // before the trip point
        let err = catch_unwind(AssertUnwindSafe(move || {
            run.finalize(SimTime::from_secs(2));
        }))
        .expect_err("rank 3 must panic in finalize");
        let msg = panic_message(err);
        assert!(msg.contains("injected failure on rank 3"), "{msg}");
        assert!(!msg.contains("PoisonError"), "{msg}");
        assert!(
            msg.contains("rank 3 panicked during cluster finalize"),
            "{msg}"
        );
    }

    #[test]
    fn telemetry_gathers_per_rank_and_merges() {
        let base = MonEqConfig {
            interval: Some(SimDuration::from_millis(100)),
            telemetry: true,
            ..MonEqConfig::default()
        };
        let mut run = ClusterRun::launch_with(
            3,
            |rank| Box::new(Fake { rank }),
            |rank| format!("node{rank}"),
            SimTime::ZERO,
            base,
        );
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        assert_eq!(result.telemetry.len(), 3);
        for t in &result.telemetry {
            assert!(!t.is_empty());
            assert!(t.counter("polls.succeeded") > 0);
            assert!(t.histogram("query_latency/fake").is_some());
        }
        let merged = result.telemetry_merged();
        let scheduled: u64 = result.completeness.iter().map(|r| r[0].scheduled).sum();
        assert_eq!(merged.counter("polls.scheduled"), scheduled);
        // Every poll of the fake backend costs exactly its poll_cost, so
        // the merged latency histogram is a constant distribution.
        let h = &merged.histograms["query_latency/fake"];
        assert_eq!(h.percentile(0.99), SimDuration::from_micros(10));
    }

    #[test]
    fn telemetry_off_by_default_reports_empty() {
        let mut run = launch(2);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        assert_eq!(result.telemetry.len(), 2);
        assert!(result.telemetry.iter().all(Telemetry::is_empty));
    }

    #[test]
    fn sched_stats_account_all_chunks() {
        let mut run = launch(13)
            .with_par_agents(4)
            .with_chunk_size(3)
            .with_host_cpus(4);
        run.run_until(SimTime::from_secs(1));
        let claimed: u64 = run.sched_stats().claimed_per_worker.iter().sum();
        assert_eq!(claimed, 5, "13 ranks / chunk 3 = 5 chunks, all claimed");
        let result = run.finalize(SimTime::from_secs(2));
        assert_eq!(result.sched.chunks, 10, "run_until + finalize phases");
        assert_eq!(result.sched.workers, 4);
        let total: u64 = result.sched.claimed_per_worker.iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn shared_plan_keeps_outputs_identical_and_cuts_charged_cost() {
        let drive = |run: &mut ClusterRun| run.run_until(SimTime::from_secs(2));
        let mut naive = launch(10);
        drive(&mut naive);
        let naive = naive.finalize(SimTime::from_secs(2));
        // Domains {0-3}, {4-7}, {8-9} (ragged tail on purpose).
        let mut shared = launch(10).with_collection_plan(CollectionPlan::shared(4));
        assert!(shared.collection_plan().is_shared());
        drive(&mut shared);
        let shared = shared.finalize(SimTime::from_secs(2));
        // Data is untouched by the plan; only the charged cost moves.
        assert_eq!(naive.files, shared.files);
        assert_eq!(naive.completeness, shared.completeness);
        for (rank, (n, s)) in naive.overheads.iter().zip(&shared.overheads).enumerate() {
            if rank % 4 == 0 {
                assert_eq!(n.collection, s.collection, "leader rank {rank} pays live");
            } else {
                assert_eq!(
                    s.collection,
                    SimDuration::ZERO,
                    "follower rank {rank} rides the leader's fetch"
                );
            }
            assert_eq!(n.polls, s.polls);
        }
        // Ledger: every poll is exactly one lookup; per generation the
        // leader misses and the domain's other ranks hit.
        let scheduled: u64 = shared.overheads.iter().map(|o| o.polls).sum();
        assert_eq!(shared.cache.lookups(), scheduled);
        assert_eq!(shared.cache.bypasses, 0);
        let polls = shared.overheads[0].polls;
        assert_eq!(shared.cache.misses, polls * 3, "one leader per domain");
        assert_eq!(shared.cache.hits, polls * 7);
        assert!(naive.cache.is_empty(), "no plan, no ledger");
    }

    #[test]
    fn shared_plan_parallel_matches_serial_including_ledger() {
        let mut serial = launch(24).with_collection_plan(CollectionPlan::shared(8));
        serial.run_until(SimTime::from_secs(1));
        let serial = serial.finalize(SimTime::from_secs(2));
        // Chunk 3 is misaligned on purpose; dispatch aligns it up to 8.
        let mut parallel = launch(24)
            .with_collection_plan(CollectionPlan::shared(8))
            .with_par_agents(4)
            .with_chunk_size(3)
            .with_host_cpus(4);
        parallel.run_until(SimTime::from_secs(1));
        let parallel = parallel.finalize(SimTime::from_secs(2));
        assert_eq!(serial.files, parallel.files);
        assert_eq!(serial.overheads, parallel.overheads);
        assert_eq!(serial.cache, parallel.cache);
    }

    /// A backend whose readings depend only on the query instant (one
    /// sensor genuinely shared by the whole domain) and which counts its
    /// live reads, so tests can see the leader reading for everyone.
    struct SharedSensor {
        reads: Arc<AtomicUsize>,
    }
    impl EnvBackend for SharedSensor {
        fn name(&self) -> &'static str {
            "shared-sensor"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<crate::backend::Poll, crate::backend::ReadError> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            Ok(crate::backend::Poll::complete(vec![DataPoint::power(
                t,
                "dev",
                "d",
                t.as_nanos() as f64 * 1e-9,
            )]))
        }
        fn replayable(&self) -> bool {
            true
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    #[test]
    fn replayable_backend_reads_once_per_domain_generation() {
        let run_with = |plan: Option<CollectionPlan>| {
            let reads = Arc::new(AtomicUsize::new(0));
            let handle = Arc::clone(&reads);
            let mut run = ClusterRun::launch(
                4,
                Some(SimDuration::from_millis(100)),
                move |_| {
                    Box::new(SharedSensor {
                        reads: Arc::clone(&handle),
                    })
                },
                |rank| format!("node{rank}"),
                SimTime::ZERO,
            );
            if let Some(p) = plan {
                run = run.with_collection_plan(p);
            }
            run.run_until(SimTime::from_secs(1));
            let result = run.finalize(SimTime::from_secs(1));
            (result, reads.load(Ordering::Relaxed))
        };
        let (naive, naive_reads) = run_with(None);
        let (shared, shared_reads) = run_with(Some(CollectionPlan::shared(4)));
        assert_eq!(naive.files, shared.files, "replayed values are exact");
        let polls = shared.overheads[0].polls as usize;
        assert_eq!(naive_reads, polls * 4);
        assert_eq!(shared_reads, polls, "only the leader touches the sensor");
    }

    #[test]
    fn single_rank_domain_plan_is_the_naive_plan_in_disguise() {
        let end = SimTime::from_secs(1);
        let mut naive = launch(6);
        naive.run_until(end);
        let naive = naive.finalize(end);
        let mut single = launch(6).with_collection_plan(CollectionPlan::shared(1));
        assert!(!single.collection_plan().is_shared());
        single.run_until(end);
        let single = single.finalize(end);
        assert_eq!(naive.files, single.files);
        assert_eq!(naive.overheads, single.overheads);
        assert!(single.cache.is_empty(), "no sharing, no cache ledger");
    }

    #[test]
    fn ragged_tail_domain_elects_its_own_leader() {
        // 9 ranks, domain size 4 -> {0-3}, {4-7}, {8}: the rank count is
        // not divisible by the domain size, so the tail is a one-rank
        // domain whose only member must lead itself every generation.
        let plan = CollectionPlan::shared(4);
        assert_eq!(plan.domains(9), 3);
        assert_eq!(plan.domain_of(8), 2);
        let end = SimTime::from_secs(2);
        let mut naive = launch(9);
        naive.run_until(end);
        let naive = naive.finalize(end);
        let mut shared = launch(9).with_collection_plan(plan);
        shared.run_until(end);
        let shared = shared.finalize(end);
        assert_eq!(naive.files, shared.files);
        for (rank, (n, s)) in naive.overheads.iter().zip(&shared.overheads).enumerate() {
            if rank % 4 == 0 {
                assert_eq!(n.collection, s.collection, "leader rank {rank} pays live");
            } else {
                assert_eq!(s.collection, SimDuration::ZERO, "follower rank {rank}");
            }
        }
        // The tail leader misses every generation exactly like the full
        // domains' leaders; only the six followers ever hit.
        let polls = shared.overheads[0].polls;
        assert_eq!(shared.cache.misses, polls * 3);
        assert_eq!(shared.cache.hits, polls * 6);
        assert_eq!(shared.cache.bypasses, 0);
    }

    /// Healthy until `fail_from`, then every read on rank 0 fails — drives
    /// a domain leader through retries into the disable path mid-run.
    struct FailsFrom {
        rank: usize,
        fail_from: SimTime,
    }
    impl EnvBackend for FailsFrom {
        fn name(&self) -> &'static str {
            "fails-from"
        }
        fn platform(&self) -> Platform {
            Platform::Rapl
        }
        fn min_interval(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
        fn poll_cost(&self) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn capabilities(&self) -> Vec<(Metric, Support)> {
            vec![]
        }
        fn read(&mut self, t: SimTime) -> Result<crate::backend::Poll, crate::backend::ReadError> {
            if self.rank == 0 && t >= self.fail_from {
                return Err(crate::backend::ReadError::Transient("dead sensor".into()));
            }
            Ok(crate::backend::Poll::complete(vec![DataPoint::power(
                t,
                "dev",
                "d",
                100.0 + self.rank as f64,
            )]))
        }
        fn records_per_poll(&self) -> usize {
            1
        }
    }

    #[test]
    fn disabled_leader_hands_the_domain_to_the_next_rank() {
        let fail_from = SimTime::from_secs(3);
        let launch_flaky = || {
            ClusterRun::launch(
                4,
                Some(SimDuration::from_millis(100)),
                move |rank| Box::new(FailsFrom { rank, fail_from }) as Box<dyn EnvBackend>,
                |rank| format!("node{rank}"),
                SimTime::ZERO,
            )
        };
        let end = SimTime::from_secs(8);
        let mut naive = launch_flaky();
        naive.run_until(end);
        let naive = naive.finalize(end);
        let mut shared = launch_flaky().with_collection_plan(CollectionPlan::shared(4));
        shared.run_until(end);
        let shared = shared.finalize(end);
        // The plan changes charged cost only — data, substitutions, and
        // the disable marker are identical with it on or off.
        assert_eq!(naive.files, shared.files);
        assert_eq!(naive.completeness, shared.completeness);
        // Rank 0 was disabled mid-window, strictly between the first
        // failure and the end of the run; the healthy ranks never were.
        let c0 = &shared.completeness[0][0];
        assert_eq!(c0.disabled_ranks, vec![0]);
        let disabled_at = c0.disabled_at_ns.expect("rank 0 must disable");
        assert!(disabled_at > fail_from.as_nanos() && disabled_at < end.as_nanos());
        for rank in 1..4 {
            assert!(shared.completeness[rank][0].disabled_ranks.is_empty());
        }
        // While rank 0 was failing-but-enabled it published failure
        // markers, so its followers bypassed the cache at full cost.
        assert!(shared.cache.bypasses > 0, "failure markers force bypasses");
        // After the disable, rank 1 is the first to consult each
        // generation and takes over as leader: it pays live reads the
        // deeper followers never do, on top of the bypass-phase cost all
        // three paid equally.
        let collection = |rank: usize| shared.overheads[rank].collection;
        assert_eq!(collection(2), collection(3), "pure followers pay alike");
        assert!(collection(2) > SimDuration::ZERO, "bypass phase is charged");
        assert!(
            collection(1) > collection(2),
            "rank 1 leads the post-disable generations: {:?} vs {:?}",
            collection(1),
            collection(2)
        );
        // Disabled polls never consult the cache: the ledger accounts one
        // lookup for every poll except rank 0's post-disable (missed) ones.
        let polls: u64 = shared.overheads.iter().map(|o| o.polls).sum();
        assert_eq!(shared.cache.lookups(), polls - c0.missed_polls);
    }

    #[test]
    fn worst_case_overhead_is_maximal() {
        let mut run = launch(3);
        run.run_until(SimTime::from_secs(1));
        let result = run.finalize(SimTime::from_secs(1));
        let worst = result.worst_case_overhead();
        for o in &result.overheads {
            assert!(worst.total() >= o.total());
        }
    }
}
