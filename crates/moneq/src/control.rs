//! Session-level control callbacks: the closed-loop hook.
//!
//! A passive session observes; a *controller* acts on what it observed.
//! [`ControlHook::after_poll`] is invoked once per timer fire, after every
//! attached backend has polled, with the session's append-only record
//! array and the index where this fire's records begin — the controller
//! reads its measurements exactly as the file will report them (stale
//! substitutes and all) and actuates whatever plant it holds.
//!
//! The hook is deliberately *outside* the poll path: sessions without one
//! (`None`, the default) execute byte-identical poll arithmetic to builds
//! that predate the hook, which is what `tests/scenario_prop.rs` pins.
//! Hooks run on the session's own timeline, so a controlled session is as
//! deterministic as an open-loop one — and because each hook only touches
//! its own rank's plant, serial and parallel cluster drives stay
//! byte-identical under feedback.

use crate::records::Records;
use simkit::SimTime;

/// A controller attached to one session ([`crate::MonEq::attach_control`]).
///
/// Implementations typically sample the new records (`records.get(i)` for
/// `i in new_from..records.len()`), feed a regulator, and write device
/// state (a power-limit MSR, a throttle flag) through handles they own.
pub trait ControlHook: Send {
    /// Called after every timer fire at virtual time `t`. Records from
    /// `new_from` to `records.len()` were appended by this fire.
    fn after_poll(&mut self, t: SimTime, records: &Records, new_from: usize);
}
