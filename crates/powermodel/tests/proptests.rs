//! Property-based tests for the power/sensor/energy models.

use powermodel::{
    ComponentSpec, DemandTrace, DevicePower, EnergyCounter, EnergyCounterSpec, PhaseBuilder,
    ScalarSensor, SensorSpec,
};
use proptest::prelude::*;
use simkit::{NoiseStream, SimDuration, SimTime};

/// Strategy: a random phase plan as (duration_ms in 1..5000, level in [0,1]).
fn phases() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((1u64..5_000, 0.0f64..=1.0), 1..12)
}

fn build_trace(phases: &[(u64, f64)]) -> DemandTrace {
    let mut b = PhaseBuilder::new();
    for &(ms, level) in phases {
        b = b.phase(SimDuration::from_millis(ms), level);
    }
    b.build()
}

proptest! {
    #[test]
    fn demand_levels_always_in_unit_interval(ph in phases(), t_ms in 0u64..100_000) {
        let tr = build_trace(&ph);
        let v = tr.level_at(SimTime::from_millis(t_ms));
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn demand_integral_matches_riemann_sum(ph in phases()) {
        let tr = build_trace(&ph);
        let end_ms: u64 = ph.iter().map(|&(ms, _)| ms).sum::<u64>() + 500;
        let exact = tr.integrate(SimTime::ZERO, SimTime::from_millis(end_ms));
        // 1 ms Riemann sum (left rule is exact between breakpoints; error
        // only where a breakpoint splits a step).
        let mut approx = 0.0;
        for k in 0..end_ms {
            approx += tr.level_at(SimTime::from_millis(k)) * 1e-3;
        }
        prop_assert!((exact - approx).abs() < 1e-2 * (1.0 + exact.abs()),
            "exact {} vs riemann {}", exact, approx);
    }

    #[test]
    fn device_power_bounded_by_idle_and_peak(
        ph in phases(),
        idle in 0.0f64..100.0,
        dynamic in 0.0f64..500.0,
        tau_ms in 0u64..10_000,
        t_ms in 0u64..120_000,
    ) {
        let tr = build_trace(&ph);
        let comp = ComponentSpec {
            name: "c",
            idle_w: idle,
            dynamic_w: dynamic,
            ramp_tau: SimDuration::from_millis(tau_ms),
        };
        let dev = DevicePower::single("d", comp, &tr);
        let p = dev.total_power(SimTime::from_millis(t_ms));
        prop_assert!(p >= idle - 1e-9, "p {} below idle {}", p, idle);
        prop_assert!(p <= idle + dynamic + 1e-9, "p {} above peak", p);
    }

    #[test]
    fn device_energy_matches_numeric_integration(
        ph in prop::collection::vec((1u64..2_000, 0.0f64..=1.0), 1..6),
        tau_ms in 0u64..3_000,
    ) {
        let tr = build_trace(&ph);
        let comp = ComponentSpec {
            name: "c",
            idle_w: 10.0,
            dynamic_w: 90.0,
            ramp_tau: SimDuration::from_millis(tau_ms),
        };
        let dev = DevicePower::single("d", comp, &tr);
        let end_ms: u64 = ph.iter().map(|&(ms, _)| ms).sum::<u64>() + 1_000;
        let to = SimTime::from_millis(end_ms);
        let exact = dev.component_energy(0, SimTime::ZERO, to);
        // Trapezoid with 1 ms steps.
        let mut numeric = 0.0;
        let mut prev = dev.component_power(0, SimTime::ZERO);
        for k in 1..=end_ms {
            let cur = dev.component_power(0, SimTime::from_millis(k));
            numeric += 0.5 * (prev + cur) * 1e-3;
            prev = cur;
        }
        prop_assert!((exact - numeric).abs() < 5e-3 * (1.0 + numeric.abs()),
            "exact {} vs numeric {}", exact, numeric);
    }

    #[test]
    fn device_energy_additive(
        ph in prop::collection::vec((1u64..2_000, 0.0f64..=1.0), 1..6),
        split_ms in 1u64..10_000,
    ) {
        let tr = build_trace(&ph);
        let comp = ComponentSpec {
            name: "c",
            idle_w: 5.0,
            dynamic_w: 45.0,
            ramp_tau: SimDuration::from_millis(750),
        };
        let dev = DevicePower::single("d", comp, &tr);
        let end = SimTime::from_secs(20);
        let mid = SimTime::from_millis(split_ms.min(20_000));
        let whole = dev.component_energy(0, SimTime::ZERO, end);
        let parts = dev.component_energy(0, SimTime::ZERO, mid)
            + dev.component_energy(0, mid, end);
        prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    #[test]
    fn sensor_observation_error_is_bounded(
        truth_val in 0.0f64..500.0,
        quantum in 0.01f64..10.0,
        t_ms in 0u64..60_000,
    ) {
        // No noise: |observed - truth| <= quantum/2 for a constant signal.
        let s = ScalarSensor::new(
            SensorSpec::ideal(SimDuration::from_millis(60)).with_quantum(quantum),
            NoiseStream::new(1),
        );
        let v = s.observe(SimTime::from_millis(t_ms), |_| truth_val);
        prop_assert!((v - truth_val).abs() <= quantum / 2.0 + 1e-9);
    }

    #[test]
    fn sensor_same_generation_same_value(
        seed in any::<u64>(),
        slot in 0u64..1_000,
        off1 in 0u64..59_999,
        off2 in 0u64..59_999,
    ) {
        // No jitter: any two queries inside one 60 ms slot agree exactly.
        let s = ScalarSensor::new(
            SensorSpec::ideal(SimDuration::from_millis(60)).with_noise(3.0),
            NoiseStream::new(seed),
        );
        let base_us = slot * 60_000;
        let t1 = SimTime::from_micros(base_us + off1.min(59_999));
        let t2 = SimTime::from_micros(base_us + off2.min(59_999));
        let truth = |_: SimTime| 123.0;
        prop_assert_eq!(s.observe(t1, truth), s.observe(t2, truth));
    }

    #[test]
    fn energy_counter_delta_correct_under_one_wrap(
        power in 1.0f64..2_000.0,
        t1_ms in 0u64..100_000,
        dt_ms in 1u64..30_000,
    ) {
        let spec = EnergyCounterSpec {
            unit_joules: 1.0 / 65_536.0,
            width_bits: 32,
            update_period: SimDuration::from_millis(1),
        };
        let c = EnergyCounter::new(spec);
        let energy = |t: SimTime| power * t.as_secs_f64();
        let t1 = SimTime::from_millis(t1_ms);
        let t2 = SimTime::from_millis(t1_ms + dt_ms);
        // Only test when at most one wrap can occur in the window.
        prop_assume!(power * (dt_ms as f64 / 1e3) < spec.wrap_joules());
        let j = c.counts_to_joules(c.delta_counts(c.raw(t1, energy), c.raw(t2, energy)));
        let truth = power * (t2.grid_floor(SimTime::ZERO, spec.update_period)
            - t1.grid_floor(SimTime::ZERO, spec.update_period)).as_secs_f64();
        // Within one count unit + grid quantization of the power slope.
        prop_assert!((j - truth).abs() <= spec.unit_joules + 1e-9,
            "delta {} vs truth {}", j, truth);
    }
}
