//! Exact ground-truth energy accounting — the reference every mechanism
//! is judged against.
//!
//! A [`crate::DevicePower`] already integrates its first-order ramp in
//! closed form per piecewise-constant demand segment, so true energy over
//! any window is an *analytic* quantity: no step size, no accumulation
//! drift, no dependence on how the window is subdivided (up to one
//! floating-point rounding per segment). The [`TrueEnergyLedger`] packages
//! that guarantee for a whole platform: named devices, instantaneous
//! total power, exact energy over arbitrary windows, and an exact
//! per-device per-window breakdown on a fixed grid — the denominator of
//! every error decomposition in `envmon-accuracy`.

use crate::device::DevicePower;
use simkit::{SimDuration, SimTime};

/// Exact energy of one device over one grid window — see
/// [`TrueEnergyLedger::windows`].
#[derive(Clone, Debug, PartialEq)]
pub struct WindowEnergy {
    /// Name the device was registered under.
    pub device: String,
    /// Zero-based window index on the grid.
    pub index: u64,
    /// Window start (inclusive), `from + index * period` exactly.
    pub start: SimTime,
    /// Window end (exclusive except for the final, clipped window).
    pub end: SimTime,
    /// Closed-form energy over `[start, end]`, joules.
    pub joules: f64,
}

/// A set of named ground-truth power sources with exact closed-form
/// energy integrals.
///
/// ```
/// use powermodel::{ComponentSpec, DevicePower, PhaseBuilder, TrueEnergyLedger};
/// use simkit::{SimDuration, SimTime};
///
/// let demand = PhaseBuilder::new().phase(SimDuration::from_secs(10), 1.0).build();
/// let dev = DevicePower::single(
///     "gpu",
///     ComponentSpec { name: "core", idle_w: 20.0, dynamic_w: 80.0,
///                     ramp_tau: SimDuration::ZERO },
///     &demand,
/// );
/// let mut ledger = TrueEnergyLedger::new();
/// ledger.add_device("gpu", dev);
/// // 100 W for 10 s, idle after: exact, not approximated.
/// let j = ledger.energy(SimTime::ZERO, SimTime::from_secs(10));
/// assert!((j - 1000.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TrueEnergyLedger {
    devices: Vec<(String, DevicePower)>,
}

impl TrueEnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TrueEnergyLedger::default()
    }

    /// Register a device under `name`. Names must be unique; energy
    /// queries sum devices in registration order (fixed order keeps
    /// floating-point sums reproducible).
    pub fn add_device(&mut self, name: impl Into<String>, device: DevicePower) -> &mut Self {
        let name = name.into();
        assert!(
            self.device(&name).is_none(),
            "duplicate ledger device {name:?}"
        );
        self.devices.push((name, device));
        self
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Is the ledger empty?
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The registered device names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.devices.iter().map(|(n, _)| n.as_str())
    }

    /// Look up a device by name.
    pub fn device(&self, name: &str) -> Option<&DevicePower> {
        self.devices.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Instantaneous total true power at `t`, watts.
    pub fn power(&self, t: SimTime) -> f64 {
        self.devices.iter().map(|(_, d)| d.total_power(t)).sum()
    }

    /// Exact total energy over `[from, to]`, joules.
    pub fn energy(&self, from: SimTime, to: SimTime) -> f64 {
        self.devices
            .iter()
            .map(|(_, d)| d.total_energy(from, to))
            .sum()
    }

    /// Exact energy of the device registered as `name` over `[from, to]`.
    ///
    /// Panics on an unknown name — a typo in an accuracy harness should
    /// fail loudly, not report zero energy.
    pub fn device_energy(&self, name: &str, from: SimTime, to: SimTime) -> f64 {
        self.device(name)
            .unwrap_or_else(|| panic!("no ledger device {name:?}"))
            .total_energy(from, to)
    }

    /// Exact per-device energy on the grid `from + k * period`, every
    /// window clipped to `to`. Window boundaries are computed directly
    /// from the index in integer nanoseconds — boundary `k` is the same
    /// instant whether reached as a window start or the previous window's
    /// end, so summing window energies telescopes against
    /// [`TrueEnergyLedger::energy`] up to floating-point rounding only.
    pub fn windows(&self, from: SimTime, to: SimTime, period: SimDuration) -> Vec<WindowEnergy> {
        assert!(!period.is_zero(), "window period must be positive");
        assert!(from <= to, "window range must be ordered");
        let mut out = Vec::new();
        let mut index = 0u64;
        loop {
            let start = from + SimDuration::from_nanos(period.as_nanos().saturating_mul(index));
            if start >= to {
                break;
            }
            let nominal_end =
                from + SimDuration::from_nanos(period.as_nanos().saturating_mul(index + 1));
            let end = nominal_end.min(to);
            for (name, dev) in &self.devices {
                out.push(WindowEnergy {
                    device: name.clone(),
                    index,
                    start,
                    end,
                    joules: dev.total_energy(start, end),
                });
            }
            index += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseBuilder;
    use crate::device::ComponentSpec;

    fn spec(idle: f64, dynamic: f64, tau_ms: u64) -> ComponentSpec {
        ComponentSpec {
            name: "c",
            idle_w: idle,
            dynamic_w: dynamic,
            ramp_tau: SimDuration::from_millis(tau_ms),
        }
    }

    fn ramped_device() -> DevicePower {
        let demand = PhaseBuilder::new()
            .phase(SimDuration::from_secs(3), 0.8)
            .idle(SimDuration::from_secs(1))
            .phase(SimDuration::from_secs(2), 0.3)
            .build();
        DevicePower::single("dev", spec(25.0, 75.0, 700), &demand)
    }

    #[test]
    fn window_energies_telescope_to_the_total() {
        let mut ledger = TrueEnergyLedger::new();
        ledger.add_device("a", ramped_device());
        let (from, to) = (SimTime::from_millis(130), SimTime::from_secs(6));
        let total = ledger.energy(from, to);
        let windows = ledger.windows(from, to, SimDuration::from_millis(170));
        let sum: f64 = windows.iter().map(|w| w.joules).sum();
        assert!(
            (sum - total).abs() <= 1e-9 * total.abs().max(1.0),
            "sum {sum} vs total {total}"
        );
        // Boundaries are shared instants, and the last window is clipped.
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(windows.last().unwrap().end, to);
    }

    #[test]
    fn windows_split_by_device_and_grid() {
        let mut ledger = TrueEnergyLedger::new();
        ledger.add_device("a", ramped_device());
        ledger.add_device("b", ramped_device());
        let ws = ledger.windows(
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::from_millis(250),
        );
        assert_eq!(ws.len(), 4 * 2);
        let total = ledger.device_energy("a", SimTime::ZERO, SimTime::from_secs(1));
        let sum: f64 = ws
            .iter()
            .filter(|w| w.device == "a")
            .map(|w| w.joules)
            .sum();
        assert!(
            (sum - total).abs() <= 1e-9 * total.max(1.0),
            "{sum} vs {total}"
        );
    }

    #[test]
    fn constant_load_is_exact() {
        let demand = PhaseBuilder::new()
            .phase(SimDuration::from_secs(100), 1.0)
            .build_open();
        let dev = DevicePower::single("dev", spec(30.0, 70.0, 0), &demand);
        let mut ledger = TrueEnergyLedger::new();
        ledger.add_device("flat", dev);
        assert_eq!(ledger.power(SimTime::from_secs(50)), 100.0);
        let j = ledger.energy(SimTime::from_secs(10), SimTime::from_secs(20));
        assert!((j - 1000.0).abs() < 1e-9, "{j}");
    }

    #[test]
    #[should_panic(expected = "duplicate ledger device")]
    fn duplicate_names_are_rejected() {
        let mut ledger = TrueEnergyLedger::new();
        ledger.add_device("x", ramped_device());
        ledger.add_device("x", ramped_device());
    }

    #[test]
    #[should_panic(expected = "no ledger device")]
    fn unknown_device_queries_panic() {
        TrueEnergyLedger::new().device_energy("ghost", SimTime::ZERO, SimTime::from_secs(1));
    }
}
