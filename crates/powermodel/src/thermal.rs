//! First-order thermal model.
//!
//! Figure 5 of the paper overlays GPU temperature on power during a vector-
//! add run: temperature climbs steadily toward a power-dependent asymptote.
//! A first-order RC model reproduces that: the die temperature `T` relaxes
//! toward `T_ambient + R_th * P(t)` with time constant `tau`.
//!
//! Power itself is an arbitrary function of time (the exponential-filtered
//! device model), so the temperature trajectory has no closed form; we
//! integrate on a fixed grid once and interpolate. The grid is part of the
//! model spec, making results deterministic and query-order independent.

use simkit::{SimDuration, SimTime, TimeSeries};

/// Static description of a first-order thermal node.
#[derive(Clone, Copy, Debug)]
pub struct ThermalSpec {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient, °C per watt.
    pub r_c_per_w: f64,
    /// Thermal time constant.
    pub tau: SimDuration,
    /// Integration step (also the resolution of queries).
    pub step: SimDuration,
}

impl ThermalSpec {
    /// Steady-state temperature at a constant power draw.
    pub fn steady_state(&self, watts: f64) -> f64 {
        self.ambient_c + self.r_c_per_w * watts
    }
}

/// A precomputed temperature trajectory.
#[derive(Clone, Debug)]
pub struct ThermalTrace {
    spec: ThermalSpec,
    /// Temperature at grid point `k` (time `k * step`).
    temps: Vec<f64>,
}

impl ThermalTrace {
    /// Integrate the thermal node over `[0, horizon]` driven by `power(t)`.
    ///
    /// The initial temperature is the steady state of `power(0)` (the device
    /// has been idling long before the experiment starts). Uses the exact
    /// per-step relaxation `T += (T_target - T)(1 - e^{-dt/tau})` with the
    /// power held at its step-midpoint value, which is second-order accurate
    /// and unconditionally stable.
    pub fn simulate<F: Fn(SimTime) -> f64>(spec: ThermalSpec, horizon: SimTime, power: F) -> Self {
        assert!(!spec.step.is_zero(), "integration step must be positive");
        assert!(
            !spec.tau.is_zero(),
            "thermal time constant must be positive"
        );
        assert!(spec.r_c_per_w >= 0.0);
        let steps = horizon.as_nanos() / spec.step.as_nanos() + 1;
        let alpha = 1.0 - (-(spec.step.as_secs_f64() / spec.tau.as_secs_f64())).exp();
        let mut temps = Vec::with_capacity(steps as usize + 1);
        let mut t_now = spec.steady_state(power(SimTime::ZERO));
        temps.push(t_now);
        for k in 0..steps {
            let mid = SimTime::from_nanos(k * spec.step.as_nanos() + spec.step.as_nanos() / 2);
            let target = spec.steady_state(power(mid));
            t_now += (target - t_now) * alpha;
            temps.push(t_now);
        }
        ThermalTrace { spec, temps }
    }

    /// The spec the trace was built from.
    pub fn spec(&self) -> &ThermalSpec {
        &self.spec
    }

    /// Temperature at time `t` (linear interpolation on the grid; clamped to
    /// the trace ends).
    pub fn temp_at(&self, t: SimTime) -> f64 {
        let step_ns = self.spec.step.as_nanos();
        let pos = t.as_nanos() as f64 / step_ns as f64;
        let k = pos.floor() as usize;
        if k + 1 >= self.temps.len() {
            return *self.temps.last().expect("trace non-empty");
        }
        let frac = pos - k as f64;
        self.temps[k] * (1.0 - frac) + self.temps[k + 1] * frac
    }

    /// Export as a [`TimeSeries`] sampled at `period`.
    pub fn to_series(&self, name: &str, period: SimDuration) -> TimeSeries {
        let mut out = TimeSeries::new(name);
        let end_ns = (self.temps.len() as u64 - 1) * self.spec.step.as_nanos();
        let mut t = SimTime::ZERO;
        while t.as_nanos() <= end_ns {
            out.push(t, self.temp_at(t));
            t += period;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ThermalSpec {
        ThermalSpec {
            ambient_c: 30.0,
            r_c_per_w: 0.25,
            tau: SimDuration::from_secs(20),
            step: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn steady_state_formula() {
        assert_eq!(spec().steady_state(100.0), 55.0);
        assert_eq!(spec().steady_state(0.0), 30.0);
    }

    #[test]
    fn constant_power_stays_at_steady_state() {
        let tr = ThermalTrace::simulate(spec(), SimTime::from_secs(100), |_| 80.0);
        for s in [0u64, 10, 50, 100] {
            let t = tr.temp_at(SimTime::from_secs(s));
            assert!((t - 50.0).abs() < 1e-6, "t({s}) = {t}");
        }
    }

    #[test]
    fn step_power_relaxes_exponentially() {
        // Power steps 0 -> 100 W at t=0 (initial steady state at 0 W).
        let tr = ThermalTrace::simulate(spec(), SimTime::from_secs(200), |t| {
            if t > SimTime::ZERO {
                100.0
            } else {
                0.0
            }
        });
        let t0 = tr.temp_at(SimTime::ZERO);
        assert!((t0 - 30.0).abs() < 1e-6);
        // After one tau: 63.2% of the 25-degree rise.
        let t_tau = tr.temp_at(SimTime::from_secs(20));
        let expected = 30.0 + 25.0 * (1.0 - (-1.0f64).exp());
        assert!(
            (t_tau - expected).abs() < 0.2,
            "t(tau)={t_tau} vs {expected}"
        );
        // Settles near 55.
        let t_end = tr.temp_at(SimTime::from_secs(200));
        assert!((t_end - 55.0).abs() < 0.05);
    }

    #[test]
    fn monotone_rise_for_monotone_power() {
        let tr = ThermalTrace::simulate(spec(), SimTime::from_secs(100), |t| {
            t.as_secs_f64().min(60.0) // ramp then hold
        });
        let mut last = -1e9;
        for s in 0..100 {
            let v = tr.temp_at(SimTime::from_secs(s));
            assert!(v >= last - 1e-9);
            last = v;
        }
    }

    #[test]
    fn temp_clamps_beyond_horizon() {
        let tr = ThermalTrace::simulate(spec(), SimTime::from_secs(10), |_| 40.0);
        assert_eq!(
            tr.temp_at(SimTime::from_secs(10)),
            tr.temp_at(SimTime::from_secs(1_000))
        );
    }

    #[test]
    fn to_series_has_expected_grid() {
        let tr = ThermalTrace::simulate(spec(), SimTime::from_secs(1), |_| 40.0);
        let s = tr.to_series("temp", SimDuration::from_millis(250));
        assert_eq!(s.len(), 5); // 0, 0.25, 0.5, 0.75, 1.0
        assert_eq!(s.name(), "temp");
    }
}
