//! Piecewise-constant utilization demand.
//!
//! A workload presents each device component (CPU cores, DRAM, network
//! links, …) with a utilization level in `[0, 1]` that changes at phase
//! boundaries. [`DemandTrace`] stores those breakpoints; [`PhaseBuilder`]
//! builds them by appending `(duration, level)` phases, which is how the
//! instrumented kernels in `hpc-workloads` express themselves.

use simkit::{SimDuration, SimTime};

/// A piecewise-constant function of time with values in `[0, 1]`.
///
/// The value before the first breakpoint is `0.0` (device idle until the
/// workload arrives). The value at a breakpoint is the new level (left-closed
/// intervals).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DemandTrace {
    /// `(time, level)` breakpoints with strictly increasing times.
    points: Vec<(SimTime, f64)>,
}

impl DemandTrace {
    /// The identically-zero trace.
    pub fn zero() -> Self {
        DemandTrace { points: Vec::new() }
    }

    /// A trace that holds `level` from `t = 0` onward.
    pub fn constant(level: f64) -> Self {
        let mut t = DemandTrace::zero();
        t.set(SimTime::ZERO, level);
        t
    }

    /// Set the level from `at` onward. Breakpoints must be added in strictly
    /// increasing time order; re-setting the current last breakpoint's time
    /// overwrites its level.
    pub fn set(&mut self, at: SimTime, level: f64) {
        assert!(
            (0.0..=1.0).contains(&level),
            "utilization {level} outside [0,1]"
        );
        if let Some(&(last_t, last_v)) = self.points.last() {
            if at == last_t {
                self.points.last_mut().expect("non-empty").1 = level;
                return;
            }
            assert!(at > last_t, "breakpoints must be time-ordered");
            // Coalesce: identical consecutive levels add no information.
            if (last_v - level).abs() < f64::EPSILON {
                return;
            }
        }
        self.points.push((at, level));
    }

    /// The level at time `t`.
    pub fn level_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The breakpoints `(time, level)`.
    pub fn breakpoints(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Time of the last breakpoint (`None` for the zero trace).
    pub fn last_change(&self) -> Option<SimTime> {
        self.points.last().map(|&(t, _)| t)
    }

    /// Exact integral of the level over `[from, to]` (unit: seconds of
    /// full-utilization time). Used to cross-check the closed-form device
    /// energy against numeric integration in the property tests.
    pub fn integrate(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from);
        let mut acc = 0.0;
        let mut cursor = from;
        // Walk breakpoints inside the window.
        for &(bt, _) in &self.points {
            if bt <= cursor {
                continue;
            }
            if bt >= to {
                break;
            }
            acc += self.level_at(cursor) * (bt - cursor).as_secs_f64();
            cursor = bt;
        }
        acc += self.level_at(cursor) * (to - cursor).as_secs_f64();
        acc
    }

    /// The same trace delayed by `offset` (used to place a workload after an
    /// idle lead-in, as in Figure 1 where the BPM data shows idle time before
    /// the job starts).
    pub fn shifted(&self, offset: SimDuration) -> DemandTrace {
        DemandTrace {
            points: self.points.iter().map(|&(t, v)| (t + offset, v)).collect(),
        }
    }

    /// Pointwise maximum with another trace (used when two activities share
    /// a component, e.g. collection threads running during an application).
    pub fn max_with(&self, other: &DemandTrace) -> DemandTrace {
        let mut times: Vec<SimTime> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|&(t, _)| t)
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut out = DemandTrace::zero();
        for t in times {
            out.set(t, self.level_at(t).max(other.level_at(t)));
        }
        out
    }

    /// Pointwise saturating sum with another trace, clamped to 1.0.
    pub fn add_clamped(&self, other: &DemandTrace) -> DemandTrace {
        let mut times: Vec<SimTime> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|&(t, _)| t)
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut out = DemandTrace::zero();
        for t in times {
            out.set(t, (self.level_at(t) + other.level_at(t)).min(1.0));
        }
        out
    }
}

/// Sequential phase builder: append `(duration, level)` phases; the trace
/// returns to zero after the last phase.
#[derive(Clone, Debug)]
pub struct PhaseBuilder {
    trace: DemandTrace,
    cursor: SimTime,
}

impl PhaseBuilder {
    /// Start building at `t = 0`.
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// Start building at an arbitrary origin (e.g. the job launch time).
    pub fn starting_at(origin: SimTime) -> Self {
        PhaseBuilder {
            trace: DemandTrace::zero(),
            cursor: origin,
        }
    }

    /// Append a phase of `duration` at `level`.
    pub fn phase(mut self, duration: SimDuration, level: f64) -> Self {
        self.trace.set(self.cursor, level);
        self.cursor += duration;
        self
    }

    /// Append an idle (zero-level) gap.
    pub fn idle(self, duration: SimDuration) -> Self {
        self.phase(duration, 0.0)
    }

    /// Current end time of the built phases.
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Finish: the level drops to zero after the last phase.
    pub fn build(mut self) -> DemandTrace {
        self.trace.set(self.cursor, 0.0);
        self.trace
    }

    /// Finish without the trailing return-to-zero (the last level holds
    /// forever). Rarely wanted; figures with a visible idle tail use
    /// [`PhaseBuilder::build`].
    pub fn build_open(self) -> DemandTrace {
        self.trace
    }
}

impl Default for PhaseBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn zero_trace_is_zero_everywhere() {
        let t = DemandTrace::zero();
        assert_eq!(t.level_at(SimTime::ZERO), 0.0);
        assert_eq!(t.level_at(SimTime::from_secs(1_000)), 0.0);
    }

    #[test]
    fn step_levels() {
        let mut t = DemandTrace::zero();
        t.set(ms(100), 0.5);
        t.set(ms(200), 1.0);
        assert_eq!(t.level_at(ms(50)), 0.0);
        assert_eq!(t.level_at(ms(100)), 0.5);
        assert_eq!(t.level_at(ms(150)), 0.5);
        assert_eq!(t.level_at(ms(200)), 1.0);
        assert_eq!(t.level_at(ms(999)), 1.0);
    }

    #[test]
    fn set_same_time_overwrites() {
        let mut t = DemandTrace::zero();
        t.set(ms(100), 0.5);
        t.set(ms(100), 0.7);
        assert_eq!(t.level_at(ms(100)), 0.7);
        assert_eq!(t.breakpoints().len(), 1);
    }

    #[test]
    fn consecutive_identical_levels_coalesce() {
        let mut t = DemandTrace::zero();
        t.set(ms(100), 0.5);
        t.set(ms(200), 0.5);
        assert_eq!(t.breakpoints().len(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics() {
        let mut t = DemandTrace::zero();
        t.set(ms(200), 0.5);
        t.set(ms(100), 0.6);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_level_panics() {
        DemandTrace::zero().set(ms(0), 1.5);
    }

    #[test]
    fn integrate_exact() {
        let t = PhaseBuilder::new()
            .phase(SimDuration::from_secs(2), 0.5) // contributes 1.0
            .phase(SimDuration::from_secs(1), 1.0) // contributes 1.0
            .build();
        let integral = t.integrate(SimTime::ZERO, SimTime::from_secs(10));
        assert!((integral - 2.0).abs() < 1e-12);
        // Sub-window.
        let partial = t.integrate(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!((partial - 0.5).abs() < 1e-12);
    }

    #[test]
    fn builder_returns_to_zero() {
        let t = PhaseBuilder::new()
            .phase(SimDuration::from_secs(5), 0.8)
            .build();
        assert_eq!(t.level_at(SimTime::from_secs(4)), 0.8);
        assert_eq!(t.level_at(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn builder_open_holds_last_level() {
        let t = PhaseBuilder::new()
            .phase(SimDuration::from_secs(5), 0.8)
            .build_open();
        assert_eq!(t.level_at(SimTime::from_secs(500)), 0.8);
    }

    #[test]
    fn builder_with_origin_and_idle() {
        let t = PhaseBuilder::starting_at(SimTime::from_secs(10))
            .phase(SimDuration::from_secs(2), 1.0)
            .idle(SimDuration::from_secs(3))
            .phase(SimDuration::from_secs(1), 0.5)
            .build();
        assert_eq!(t.level_at(SimTime::from_secs(9)), 0.0);
        assert_eq!(t.level_at(SimTime::from_secs(11)), 1.0);
        assert_eq!(t.level_at(SimTime::from_secs(13)), 0.0);
        assert_eq!(t.level_at(SimTime::from_secs(15)), 0.5);
        assert_eq!(t.level_at(SimTime::from_secs(16)), 0.0);
    }

    #[test]
    fn shifted_moves_all_breakpoints() {
        let t = PhaseBuilder::new()
            .phase(SimDuration::from_secs(2), 0.5)
            .build();
        let s = t.shifted(SimDuration::from_secs(10));
        assert_eq!(s.level_at(ms(1_000)), 0.0);
        assert_eq!(s.level_at(SimTime::from_secs(11)), 0.5);
        assert_eq!(s.level_at(SimTime::from_secs(13)), 0.0);
    }

    #[test]
    fn max_and_add() {
        let a = PhaseBuilder::new()
            .phase(SimDuration::from_secs(2), 0.6)
            .build();
        let b = PhaseBuilder::starting_at(SimTime::from_secs(1))
            .phase(SimDuration::from_secs(2), 0.7)
            .build();
        let m = a.max_with(&b);
        assert_eq!(m.level_at(SimTime::from_millis(500)), 0.6);
        assert_eq!(m.level_at(SimTime::from_millis(1_500)), 0.7);
        assert_eq!(m.level_at(SimTime::from_millis(2_500)), 0.7);
        assert_eq!(m.level_at(SimTime::from_millis(3_500)), 0.0);
        let s = a.add_clamped(&b);
        assert!((s.level_at(SimTime::from_millis(1_500)) - 1.0).abs() < 1e-12);
        assert!((s.level_at(SimTime::from_millis(2_500)) - 0.7).abs() < 1e-12);
    }
}
