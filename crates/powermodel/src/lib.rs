//! # powermodel — device power, thermal, and sensor models
//!
//! The paper's figures are all ultimately *sensor observations of a device
//! executing a workload*. This crate is the shared physics layer between the
//! workload generators (`hpc-workloads`) and the four vendor-mechanism crates
//! (`bgq-sim`, `rapl-sim`, `nvml-sim`, `mic-sim`):
//!
//! ```text
//! workload ──▶ DemandTrace ──▶ DevicePower (idle + dynamic, 1st-order ramp)
//!                                   │                │
//!                              ScalarSensor      EnergyCounter      ThermalTrace
//!                              (cadence, ±W,     (unit, width,      (RC model,
//!                               quantization)     wraparound)        Figure 5)
//! ```
//!
//! * [`demand`] — per-component utilization as piecewise-constant traces;
//! * [`device`] — power response with an analytic first-order low-pass (the
//!   ~5 s NVIDIA ramp of Figure 4) and closed-form energy integrals;
//! * [`sensor`] — sampled sensors: update grid, quantization, and
//!   order-independent noise (the NVML ±5 W accuracy, RAPL update jitter);
//! * [`energy`] — wrapping integer energy counters (the RAPL 32-bit
//!   `*_ENERGY_STATUS` registers and their >60 s overflow hazard);
//! * [`ledger`] — exact closed-form ground-truth energy over arbitrary
//!   windows, the reference for the `envmon-accuracy` error decomposition;
//! * [`thermal`] — a first-order RC thermal model (Figure 5's temperature);
//! * [`capability`] — the Table I environmental-data capability matrix.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod capability;
pub mod demand;
pub mod device;
pub mod energy;
pub mod ledger;
pub mod sensor;
pub mod thermal;

pub use capability::{paper_matrix, CapabilityMatrix, Metric, MetricGroup, Platform, Support};
pub use demand::{DemandTrace, PhaseBuilder};
pub use device::{ComponentSpec, DevicePower, DeviceSpec};
pub use energy::{EnergyCounter, EnergyCounterSpec};
pub use ledger::{TrueEnergyLedger, WindowEnergy};
pub use sensor::{Observation, ScalarSensor, SensorSpec};
pub use thermal::{ThermalSpec, ThermalTrace};
