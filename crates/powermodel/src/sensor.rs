//! Sampled scalar sensors.
//!
//! Real environmental sensors do not report the instantaneous truth: they
//! refresh on an internal cadence (NVML power refreshes ~every 60 ms; RAPL
//! energy counters update on a ~1 ms grid with ±50 k-cycle jitter), quantize
//! to a reporting resolution, and carry accuracy error (NVML: ±5 W). A
//! [`ScalarSensor`] wraps a ground-truth function with exactly those three
//! distortions.
//!
//! Observation noise is drawn from an indexed [`NoiseStream`] keyed by the
//! update-grid slot, so a value, once generated, is stable: two readers
//! polling the same sensor in the same slot see the same value, and re-reads
//! never perturb anything — the property the paper's cross-mechanism
//! comparisons (Figure 7) implicitly rely on.

use simkit::{NoiseStream, SimDuration, SimTime};

/// Static description of a sampled sensor.
#[derive(Clone, Copy, Debug)]
pub struct SensorSpec {
    /// Internal refresh period (queries between refreshes observe the same
    /// generation of data).
    pub update_period: SimDuration,
    /// Grid anchor: the time of generation 0.
    pub anchor: SimTime,
    /// Reporting resolution; `0.0` disables quantization.
    pub quantum: f64,
    /// Standard deviation of per-generation Gaussian accuracy error.
    pub noise_sigma: f64,
    /// Cadence jitter: each generation is produced up to ± this far from its
    /// nominal grid slot (the RAPL "±50,000 cycles" behaviour). Bounded by
    /// half the update period.
    pub jitter: SimDuration,
}

impl SensorSpec {
    /// A perfectly accurate sensor with the given refresh period.
    pub fn ideal(update_period: SimDuration) -> Self {
        SensorSpec {
            update_period,
            anchor: SimTime::ZERO,
            quantum: 0.0,
            noise_sigma: 0.0,
            jitter: SimDuration::ZERO,
        }
    }

    /// Builder-style: set quantization.
    pub fn with_quantum(mut self, quantum: f64) -> Self {
        assert!(quantum >= 0.0);
        self.quantum = quantum;
        self
    }

    /// Builder-style: set Gaussian accuracy error.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.noise_sigma = sigma;
        self
    }

    /// Builder-style: set cadence jitter.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style: set the grid anchor.
    pub fn with_anchor(mut self, anchor: SimTime) -> Self {
        self.anchor = anchor;
        self
    }
}

/// A sensor instance: spec + independent noise stream.
#[derive(Clone, Debug)]
pub struct ScalarSensor {
    spec: SensorSpec,
    noise: NoiseStream,
}

impl ScalarSensor {
    /// Create a sensor with its own noise stream (derive per-sensor streams
    /// with [`NoiseStream::child`] so sensors never share noise).
    pub fn new(spec: SensorSpec, noise: NoiseStream) -> Self {
        assert!(
            spec.jitter.as_nanos() * 2 <= spec.update_period.as_nanos(),
            "jitter must not exceed half the update period"
        );
        ScalarSensor { spec, noise }
    }

    /// The sensor's static description.
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// The instant at which slot `k`'s generation is produced: the slot start
    /// plus a per-slot uniform jitter in `[-jitter, +jitter]` (clamped so
    /// generation 0 never precedes the anchor).
    fn slot_generation_time(&self, k: u64) -> SimTime {
        let slot_start = self.spec.anchor + self.spec.update_period.saturating_mul(k);
        if self.spec.jitter.is_zero() || k == 0 {
            // Generation 0 is pinned to the anchor so the sensor always has
            // a value to report from the first query onward.
            return slot_start;
        }
        // Jitter derives from the slot index on a dedicated sub-stream so it
        // never correlates with value noise.
        let j = self.noise.child("jitter").uniform_pm1(k);
        let offset = self.spec.jitter.mul_f64(j.abs());
        if j >= 0.0 {
            slot_start + offset
        } else if slot_start.saturating_since(self.spec.anchor) >= offset {
            slot_start - offset
        } else {
            slot_start
        }
    }

    /// The production instant of the generation observed by a query at `t`:
    /// the most recent jittered generation not after `t`. With jitter, a
    /// query early in a slot may still observe the previous generation —
    /// exactly the RAPL short-window inaccuracy the paper describes.
    pub fn generation_time(&self, t: SimTime) -> SimTime {
        self.slot_generation_time(self.generation_index(t))
    }

    /// Index of the generation observed by a query at `t`.
    pub fn generation_index(&self, t: SimTime) -> u64 {
        let k = t.grid_index(self.spec.anchor, self.spec.update_period);
        if t >= self.slot_generation_time(k) {
            k
        } else {
            // Jitter <= period/2 guarantees generation k-1 precedes slot k,
            // and generation 0 is clamped to the anchor.
            k.saturating_sub(1)
        }
    }

    /// Observe the sensor at time `t`, given the ground truth `truth(t)`.
    ///
    /// The observation is `quantize(truth(generation_time) + noise(slot))`.
    pub fn observe<F: Fn(SimTime) -> f64>(&self, t: SimTime, truth: F) -> f64 {
        self.observe_parts(t, truth).quantized
    }

    /// Observe the sensor at `t` with every pipeline stage exposed: the
    /// effective sample instant, the value before noise, after noise, and
    /// after quantization. [`ScalarSensor::observe`] returns the last
    /// stage; the accuracy harness attributes `ideal − truth(t)` to
    /// cadence, `noisy − ideal` to noise, and `quantized − noisy` to
    /// quantization. Bit-identical to `observe` on the final stage — it
    /// *is* the same computation.
    pub fn observe_parts<F: Fn(SimTime) -> f64>(&self, t: SimTime, truth: F) -> Observation {
        let k = self.generation_index(t);
        let gen_t = self.slot_generation_time(k);
        let ideal = truth(gen_t);
        let mut v = ideal;
        if self.spec.noise_sigma > 0.0 {
            v += self.spec.noise_sigma * self.noise.child("value").normal(k);
        }
        let noisy = v;
        if self.spec.quantum > 0.0 {
            v = (v / self.spec.quantum).round() * self.spec.quantum;
        }
        Observation {
            generation: gen_t,
            ideal,
            noisy,
            quantized: v,
        }
    }
}

/// One sensor observation with its pipeline stages separated — see
/// [`ScalarSensor::observe_parts`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// The (possibly jittered) generation instant the value was sampled at.
    pub generation: SimTime,
    /// Ground truth at [`Observation::generation`]: staleness only.
    pub ideal: f64,
    /// [`Observation::ideal`] plus the sensor's value noise.
    pub noisy: f64,
    /// [`Observation::noisy`] rounded to the sensor quantum — what
    /// [`ScalarSensor::observe`] reports.
    pub quantized: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise() -> NoiseStream {
        NoiseStream::new(7)
    }

    #[test]
    fn ideal_sensor_tracks_grid_floor() {
        let s = ScalarSensor::new(SensorSpec::ideal(SimDuration::from_millis(60)), noise());
        // truth(t) = t in ms
        let truth = |t: SimTime| t.as_nanos() as f64 / 1e6;
        assert_eq!(s.observe(SimTime::from_millis(0), truth), 0.0);
        assert_eq!(s.observe(SimTime::from_millis(59), truth), 0.0);
        assert_eq!(s.observe(SimTime::from_millis(60), truth), 60.0);
        assert_eq!(s.observe(SimTime::from_millis(119), truth), 60.0);
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let s = ScalarSensor::new(
            SensorSpec::ideal(SimDuration::from_millis(10)).with_quantum(0.5),
            noise(),
        );
        let v = s.observe(SimTime::from_millis(5), |_| 10.3);
        assert_eq!(v, 10.5);
        let v = s.observe(SimTime::from_millis(5), |_| 10.1);
        assert_eq!(v, 10.0);
    }

    #[test]
    fn same_slot_same_value_regardless_of_query_order() {
        let s = ScalarSensor::new(
            SensorSpec::ideal(SimDuration::from_millis(60)).with_noise(2.0),
            noise(),
        );
        let truth = |_: SimTime| 100.0;
        let a = s.observe(SimTime::from_millis(130), truth);
        let _ = s.observe(SimTime::from_millis(10), truth);
        let _ = s.observe(SimTime::from_millis(500), truth);
        let b = s.observe(SimTime::from_millis(140), truth); // same slot as 130
        assert_eq!(a, b);
    }

    #[test]
    fn noise_has_roughly_requested_sigma() {
        let s = ScalarSensor::new(
            SensorSpec::ideal(SimDuration::from_millis(1)).with_noise(5.0),
            noise(),
        );
        let truth = |_: SimTime| 50.0;
        let n = 20_000u64;
        let mut acc = simkit::RunningStats::new();
        for k in 0..n {
            acc.push(s.observe(SimTime::from_millis(k), truth));
        }
        assert!((acc.mean() - 50.0).abs() < 0.2, "mean {}", acc.mean());
        assert!((acc.std_dev() - 5.0).abs() < 0.3, "sd {}", acc.std_dev());
    }

    #[test]
    fn jittered_generations_are_causal_and_fresh() {
        let period = SimDuration::from_millis(10);
        let jitter = SimDuration::from_millis(3);
        let s = ScalarSensor::new(SensorSpec::ideal(period).with_jitter(jitter), noise());
        for q in 0..2_000u64 {
            let t = SimTime::from_micros(q * 137 + 1); // irregular query times
            let g = s.generation_time(t);
            // Causal: the observed generation already exists.
            assert!(g <= t, "generation {g:?} after query {t:?}");
            // Fresh: never staler than one period plus jitter on both ends
            // (current generation late by +jitter, previous early by -jitter).
            let staleness = t - g;
            assert!(
                staleness <= period + jitter + jitter,
                "staleness {staleness:?} at t={t:?}"
            );
        }
    }

    #[test]
    fn jitter_moves_some_generation_times() {
        let period = SimDuration::from_millis(10);
        let s = ScalarSensor::new(
            SensorSpec::ideal(period).with_jitter(SimDuration::from_millis(3)),
            noise(),
        );
        // Query exactly on nominal slot boundaries: with jitter, some slots'
        // generations have not been produced yet, so the observed generation
        // time differs from the nominal grid for some slots.
        let moved = (1..100u64)
            .filter(|&k| {
                s.generation_time(SimTime::from_millis(k * 10)) != SimTime::from_millis(k * 10)
            })
            .count();
        assert!(moved > 10, "jitter had no visible effect ({moved} moved)");
    }

    #[test]
    #[should_panic(expected = "jitter must not exceed")]
    fn oversized_jitter_rejected() {
        ScalarSensor::new(
            SensorSpec::ideal(SimDuration::from_millis(10))
                .with_jitter(SimDuration::from_millis(8)),
            noise(),
        );
    }

    #[test]
    fn different_sensors_have_independent_noise() {
        let spec = SensorSpec::ideal(SimDuration::from_millis(1)).with_noise(1.0);
        let root = NoiseStream::new(3);
        let s1 = ScalarSensor::new(spec, root.child("a"));
        let s2 = ScalarSensor::new(spec, root.child("b"));
        let truth = |_: SimTime| 0.0;
        let same = (0..100u64)
            .filter(|&k| {
                let t = SimTime::from_millis(k);
                s1.observe(t, truth) == s2.observe(t, truth)
            })
            .count();
        assert!(same < 5);
    }
}
