//! Device power response.
//!
//! Each component dissipates `idle_w + dynamic_w * u(t)` watts for a demand
//! level `u(t)`; the observable power follows that raw demand through a
//! first-order low-pass with time constant `ramp_tau` (thermal/control lag —
//! the reason the K20 in Figure 4 takes ~5 s to level off instead of
//! stepping). Because demand is piecewise constant, both the response and its
//! time integral (energy) have closed forms per segment, so the model is
//! exact at any query time — no simulation step size exists to tune.

use crate::demand::DemandTrace;
use simkit::{SimDuration, SimTime};

/// Static description of one power component of a device.
#[derive(Clone, Copy, Debug)]
pub struct ComponentSpec {
    /// Display name (matches the paper's domain names where applicable).
    pub name: &'static str,
    /// Power at zero utilization, watts.
    pub idle_w: f64,
    /// Additional power at full utilization, watts.
    pub dynamic_w: f64,
    /// First-order response time constant. `ZERO` means instantaneous.
    pub ramp_tau: SimDuration,
}

impl ComponentSpec {
    /// Raw (unfiltered) power at demand level `u`.
    #[inline]
    pub fn raw_power(&self, u: f64) -> f64 {
        self.idle_w + self.dynamic_w * u
    }
}

/// Static description of a whole device.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Device display name (e.g. `"NVIDIA K20"`).
    pub name: String,
    /// The device's power components, in a fixed order.
    pub components: Vec<ComponentSpec>,
}

impl DeviceSpec {
    /// Sum of component idle powers.
    pub fn idle_power(&self) -> f64 {
        self.components.iter().map(|c| c.idle_w).sum()
    }

    /// Sum of component peak powers.
    pub fn peak_power(&self) -> f64 {
        self.components.iter().map(|c| c.idle_w + c.dynamic_w).sum()
    }

    /// Index of a component by name.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name == name)
    }
}

/// One exponential segment of a filtered component: from `start`, the power
/// relaxes from `y_start` toward `target` with time constant `tau`.
#[derive(Clone, Copy, Debug)]
struct Segment {
    start: SimTime,
    y_start: f64,
    target: f64,
}

/// A device bound to a workload demand: the exact power/energy oracle the
/// vendor-mechanism crates observe through their sensors.
#[derive(Clone, Debug)]
pub struct DevicePower {
    spec: DeviceSpec,
    /// Per component: exponential segments, time-ordered.
    segments: Vec<Vec<Segment>>,
}

impl DevicePower {
    /// Bind `spec` to one demand trace per component (same order/length as
    /// `spec.components`). The device is assumed to be in steady state at
    /// the demand's initial level when the simulation starts.
    pub fn new(spec: DeviceSpec, demands: &[DemandTrace]) -> Self {
        assert_eq!(
            spec.components.len(),
            demands.len(),
            "one demand trace per component"
        );
        let segments = spec
            .components
            .iter()
            .zip(demands)
            .map(|(comp, demand)| build_segments(comp, demand))
            .collect();
        DevicePower { spec, segments }
    }

    /// Convenience: a single-component device.
    pub fn single(name: impl Into<String>, component: ComponentSpec, demand: &DemandTrace) -> Self {
        DevicePower::new(
            DeviceSpec {
                name: name.into(),
                components: vec![component],
            },
            std::slice::from_ref(demand),
        )
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Filtered power of component `i` at time `t`, watts.
    pub fn component_power(&self, i: usize, t: SimTime) -> f64 {
        let segs = &self.segments[i];
        let comp = &self.spec.components[i];
        let idx = match segs.binary_search_by(|s| s.start.cmp(&t)) {
            Ok(k) => k,
            Err(0) => return segs.first().map_or(comp.idle_w, |s| s.y_start),
            Err(k) => k - 1,
        };
        let seg = segs[idx];
        eval_segment(&seg, comp.ramp_tau, t)
    }

    /// Total filtered device power at time `t`, watts.
    pub fn total_power(&self, t: SimTime) -> f64 {
        (0..self.spec.components.len())
            .map(|i| self.component_power(i, t))
            .sum()
    }

    /// Exact energy of component `i` over `[from, to]`, joules.
    pub fn component_energy(&self, i: usize, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from);
        let segs = &self.segments[i];
        let comp = &self.spec.components[i];
        if segs.is_empty() {
            return comp.idle_w * (to - from).as_secs_f64();
        }
        let mut acc = 0.0;
        // Portion before the first segment (steady at y_start of segment 0).
        let first_start = segs[0].start;
        if from < first_start {
            let end = to.min(first_start);
            acc += segs[0].y_start * (end - from).as_secs_f64();
        }
        for (k, seg) in segs.iter().enumerate() {
            let seg_end = segs.get(k + 1).map(|s| s.start).unwrap_or(SimTime::MAX);
            let lo = from.max(seg.start);
            let hi = to.min(seg_end);
            if hi <= lo {
                continue;
            }
            acc += integrate_segment(seg, comp.ramp_tau, lo, hi);
        }
        acc
    }

    /// Exact total device energy over `[from, to]`, joules.
    pub fn total_energy(&self, from: SimTime, to: SimTime) -> f64 {
        (0..self.spec.components.len())
            .map(|i| self.component_energy(i, from, to))
            .sum()
    }
}

fn build_segments(comp: &ComponentSpec, demand: &DemandTrace) -> Vec<Segment> {
    let initial = comp.raw_power(demand.level_at(SimTime::ZERO));
    let mut segs = vec![Segment {
        start: SimTime::ZERO,
        y_start: initial,
        target: initial,
    }];
    for &(bt, level) in demand.breakpoints() {
        let target = comp.raw_power(level);
        let last = *segs.last().expect("segments start non-empty");
        let y_at_bt = eval_segment(&last, comp.ramp_tau, bt);
        if bt == SimTime::ZERO {
            // Breakpoint at the origin replaces the synthetic initial segment.
            segs[0] = Segment {
                start: SimTime::ZERO,
                y_start: target,
                target,
            };
        } else {
            segs.push(Segment {
                start: bt,
                y_start: y_at_bt,
                target,
            });
        }
    }
    segs
}

#[inline]
fn eval_segment(seg: &Segment, tau: SimDuration, t: SimTime) -> f64 {
    debug_assert!(t >= seg.start);
    if tau.is_zero() {
        return seg.target;
    }
    let dt = (t - seg.start).as_secs_f64();
    seg.target + (seg.y_start - seg.target) * (-dt / tau.as_secs_f64()).exp()
}

/// Integral of the segment response over `[lo, hi]` (both within the segment).
#[inline]
fn integrate_segment(seg: &Segment, tau: SimDuration, lo: SimTime, hi: SimTime) -> f64 {
    let span = (hi - lo).as_secs_f64();
    if tau.is_zero() {
        return seg.target * span;
    }
    let tau_s = tau.as_secs_f64();
    let y_lo = eval_segment(seg, tau, lo);
    // ∫ target + (y_lo - target) e^{-(t-lo)/tau} dt over [lo, hi]
    seg.target * span + (y_lo - seg.target) * tau_s * (1.0 - (-span / tau_s).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::PhaseBuilder;

    fn comp(idle: f64, dynamic: f64, tau_ms: u64) -> ComponentSpec {
        ComponentSpec {
            name: "c",
            idle_w: idle,
            dynamic_w: dynamic,
            ramp_tau: SimDuration::from_millis(tau_ms),
        }
    }

    #[test]
    fn instant_component_steps_exactly() {
        let demand = PhaseBuilder::new()
            .idle(SimDuration::from_secs(1))
            .phase(SimDuration::from_secs(2), 1.0)
            .build();
        let dev = DevicePower::single("d", comp(10.0, 40.0, 0), &demand);
        assert_eq!(dev.total_power(SimTime::from_millis(500)), 10.0);
        assert_eq!(dev.total_power(SimTime::from_millis(1_500)), 50.0);
        assert_eq!(dev.total_power(SimTime::from_secs(4)), 10.0);
    }

    #[test]
    fn filtered_component_ramps_monotonically() {
        let demand = PhaseBuilder::new()
            .phase(SimDuration::from_secs(30), 1.0)
            .build_open();
        let dev = DevicePower::single("d", comp(44.0, 11.0, 1_500), &demand);
        let mut last = 0.0;
        for ms in (0..10_000).step_by(100) {
            let p = dev.total_power(SimTime::from_millis(ms));
            assert!(p >= last - 1e-9, "power decreased during ramp");
            assert!(p <= 55.0 + 1e-9);
            last = p;
        }
        // ~5 time constants later, effectively settled (Figure 4's ~5s ramp).
        let settled = dev.total_power(SimTime::from_millis(7_500));
        assert!((settled - 55.0).abs() < 0.1, "settled at {settled}");
    }

    #[test]
    fn steady_state_before_first_breakpoint() {
        // Demand constant from t=0: device starts already settled.
        let demand = DemandTrace::constant(0.5);
        let dev = DevicePower::single("d", comp(10.0, 20.0, 2_000), &demand);
        assert!((dev.total_power(SimTime::ZERO) - 20.0).abs() < 1e-12);
        assert!((dev.total_power(SimTime::from_secs(1)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn energy_closed_form_matches_numeric() {
        let demand = PhaseBuilder::new()
            .idle(SimDuration::from_secs(2))
            .phase(SimDuration::from_secs(5), 0.8)
            .phase(SimDuration::from_secs(3), 0.3)
            .build();
        let dev = DevicePower::single("d", comp(20.0, 100.0, 700), &demand);
        let from = SimTime::from_millis(500);
        let to = SimTime::from_millis(11_500);
        let exact = dev.component_energy(0, from, to);
        // Fine trapezoidal numeric integral.
        let steps = 200_000;
        let dt = (to - from).as_secs_f64() / steps as f64;
        let mut numeric = 0.0;
        for k in 0..steps {
            let t0 = from + SimDuration::from_secs_f64(k as f64 * dt);
            let t1 = from + SimDuration::from_secs_f64((k + 1) as f64 * dt);
            numeric += 0.5 * (dev.component_power(0, t0) + dev.component_power(0, t1)) * dt;
            let _ = t1;
        }
        assert!(
            (exact - numeric).abs() < 1e-3 * numeric.abs().max(1.0),
            "exact {exact} vs numeric {numeric}"
        );
    }

    #[test]
    fn energy_is_additive_over_subintervals() {
        let demand = PhaseBuilder::new()
            .phase(SimDuration::from_secs(4), 1.0)
            .build();
        let dev = DevicePower::single("d", comp(5.0, 45.0, 300), &demand);
        let a = SimTime::ZERO;
        let m = SimTime::from_millis(2_345);
        let b = SimTime::from_secs(8);
        let whole = dev.component_energy(0, a, b);
        let parts = dev.component_energy(0, a, m) + dev.component_energy(0, m, b);
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn multi_component_totals_sum() {
        let d1 = DemandTrace::constant(1.0);
        let d2 = DemandTrace::constant(0.5);
        let spec = DeviceSpec {
            name: "two".into(),
            components: vec![comp(10.0, 10.0, 0), comp(1.0, 8.0, 0)],
        };
        let dev = DevicePower::new(spec, &[d1, d2]);
        let t = SimTime::from_secs(1);
        assert!((dev.total_power(t) - (20.0 + 5.0)).abs() < 1e-12);
        assert!((dev.total_energy(SimTime::ZERO, t) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn spec_helpers() {
        let spec = DeviceSpec {
            name: "x".into(),
            components: vec![comp(10.0, 30.0, 0), comp(5.0, 15.0, 0)],
        };
        assert_eq!(spec.idle_power(), 15.0);
        assert_eq!(spec.peak_power(), 60.0);
        assert_eq!(spec.component_index("c"), Some(0));
        assert_eq!(spec.component_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "one demand trace per component")]
    fn wrong_demand_count_panics() {
        let spec = DeviceSpec {
            name: "x".into(),
            components: vec![comp(1.0, 1.0, 0)],
        };
        DevicePower::new(spec, &[]);
    }
}
