//! The environmental-data capability matrix (Table I).
//!
//! Table I of the paper compares, row by row, which environmental data each
//! of the four mechanisms can provide. Here the matrix is a first-class
//! value: each platform crate implements `capabilities()` returning its
//! column, and the test suite asserts those columns against
//! [`paper_matrix`], the reconstruction of the published table.
//!
//! **Fidelity note** (recorded in DESIGN.md/EXPERIMENTS.md): the published
//! PDF's check-marks do not survive text extraction, so the exact ✓/✗
//! pattern of `paper_matrix` is reconstructed from the paper's prose (§II,
//! §IV) and vendor documentation. The N/A cells *are* visible in the
//! extracted text and are reproduced exactly.

use std::collections::BTreeMap;
use std::fmt;

/// The four platforms compared in Table I, in the paper's column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Platform {
    /// Intel Xeon Phi / MIC.
    XeonPhi,
    /// NVIDIA GPUs via NVML.
    Nvml,
    /// IBM Blue Gene/Q.
    BlueGeneQ,
    /// Intel RAPL.
    Rapl,
    /// IBM POWER9 (On-Chip Controller). Not a Table I column — the paper
    /// predates the machine — so it is deliberately absent from
    /// [`Platform::ALL`]; `occ-sim` states its own capability column.
    Power9,
}

impl Platform {
    /// All platforms in column order.
    pub const ALL: [Platform; 4] = [
        Platform::XeonPhi,
        Platform::Nvml,
        Platform::BlueGeneQ,
        Platform::Rapl,
    ];

    /// Column header as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Platform::XeonPhi => "Xeon Phi",
            Platform::Nvml => "NVML",
            Platform::BlueGeneQ => "Blue Gene/Q",
            Platform::Rapl => "RAPL",
            Platform::Power9 => "POWER9",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Row groups of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricGroup {
    /// "Total Power Consumption (Watts)" block.
    Power,
    /// "Temperature" block.
    Temperature,
    /// "Main Memory" block.
    MainMemory,
    /// "Processor" block.
    Processor,
    /// "Fans" block.
    Fans,
    /// "Limits" block.
    Limits,
}

impl MetricGroup {
    /// Group header as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            MetricGroup::Power => "Total Power Consumption (Watts)",
            MetricGroup::Temperature => "Temperature",
            MetricGroup::MainMemory => "Main Memory",
            MetricGroup::Processor => "Processor",
            MetricGroup::Fans => "Fans",
            MetricGroup::Limits => "Limits",
        }
    }
}

/// The 21 rows of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Total power consumption in watts.
    TotalPower,
    /// Power-rail voltage readings.
    Voltage,
    /// Power-rail current readings.
    Current,
    /// PCI Express power.
    PciExpressPower,
    /// Main-memory power.
    MainMemoryPower,
    /// Die temperature.
    DieTemp,
    /// DDR/GDDR memory temperature.
    DdrGddrTemp,
    /// Whole-device temperature.
    DeviceTemp,
    /// Intake (fan-in) temperature.
    IntakeTemp,
    /// Exhaust (fan-out) temperature.
    ExhaustTemp,
    /// Main memory used.
    MemUsed,
    /// Main memory free.
    MemFree,
    /// Memory speed in kT/sec.
    MemSpeed,
    /// Memory frequency.
    MemFrequency,
    /// Memory voltage.
    MemVoltage,
    /// Memory clock rate.
    MemClockRate,
    /// Processor voltage.
    ProcVoltage,
    /// Processor frequency.
    ProcFrequency,
    /// Processor clock rate.
    ProcClockRate,
    /// Fan speed in RPM.
    FanSpeed,
    /// Get/set power limit.
    PowerLimitGetSet,
}

impl Metric {
    /// All rows in the paper's print order.
    pub const ALL: [Metric; 21] = [
        Metric::TotalPower,
        Metric::Voltage,
        Metric::Current,
        Metric::PciExpressPower,
        Metric::MainMemoryPower,
        Metric::DieTemp,
        Metric::DdrGddrTemp,
        Metric::DeviceTemp,
        Metric::IntakeTemp,
        Metric::ExhaustTemp,
        Metric::MemUsed,
        Metric::MemFree,
        Metric::MemSpeed,
        Metric::MemFrequency,
        Metric::MemVoltage,
        Metric::MemClockRate,
        Metric::ProcVoltage,
        Metric::ProcFrequency,
        Metric::ProcClockRate,
        Metric::FanSpeed,
        Metric::PowerLimitGetSet,
    ];

    /// Row group.
    pub fn group(self) -> MetricGroup {
        use Metric::*;
        match self {
            TotalPower | Voltage | Current | PciExpressPower | MainMemoryPower => {
                MetricGroup::Power
            }
            DieTemp | DdrGddrTemp | DeviceTemp | IntakeTemp | ExhaustTemp => {
                MetricGroup::Temperature
            }
            MemUsed | MemFree | MemSpeed | MemFrequency | MemVoltage | MemClockRate => {
                MetricGroup::MainMemory
            }
            ProcVoltage | ProcFrequency | ProcClockRate => MetricGroup::Processor,
            FanSpeed => MetricGroup::Fans,
            PowerLimitGetSet => MetricGroup::Limits,
        }
    }

    /// Row label as printed in the paper.
    pub fn label(self) -> &'static str {
        use Metric::*;
        match self {
            TotalPower => "Total Power Consumption (Watts)",
            Voltage => "Voltage",
            Current => "Current",
            PciExpressPower => "PCI Express",
            MainMemoryPower => "Main Memory",
            DieTemp => "Die",
            DdrGddrTemp => "DDR/GDDR",
            DeviceTemp => "Device",
            IntakeTemp => "Intake (Fan-In)",
            ExhaustTemp => "Exhaust (Fan-Out)",
            MemUsed => "Used",
            MemFree => "Free",
            MemSpeed => "Speed (kT/sec)",
            MemFrequency => "Frequency",
            MemVoltage => "Voltage",
            MemClockRate => "Clock Rate",
            ProcVoltage => "Voltage",
            ProcFrequency => "Frequency",
            ProcClockRate => "Clock Rate",
            FanSpeed => "Speed (In RPM)",
            PowerLimitGetSet => "Get/Set Power Limit",
        }
    }
}

/// One cell of the matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Support {
    /// The mechanism provides this datum.
    Yes,
    /// The mechanism does not provide this datum.
    No,
    /// The datum is meaningless for this platform (printed "N/A").
    NotApplicable,
}

impl Support {
    /// Cell text as rendered in the regenerated table.
    pub fn symbol(self) -> &'static str {
        match self {
            Support::Yes => "Y",
            Support::No => "-",
            Support::NotApplicable => "N/A",
        }
    }
}

/// A full platforms × metrics matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapabilityMatrix {
    cells: BTreeMap<(Platform, Metric), Support>,
}

impl CapabilityMatrix {
    /// An empty matrix (every cell defaults to [`Support::No`]).
    pub fn new() -> Self {
        CapabilityMatrix {
            cells: BTreeMap::new(),
        }
    }

    /// Set one cell.
    pub fn set(&mut self, platform: Platform, metric: Metric, support: Support) {
        self.cells.insert((platform, metric), support);
    }

    /// Read one cell.
    pub fn get(&self, platform: Platform, metric: Metric) -> Support {
        self.cells
            .get(&(platform, metric))
            .copied()
            .unwrap_or(Support::No)
    }

    /// One platform's column, in row order.
    pub fn column(&self, platform: Platform) -> Vec<(Metric, Support)> {
        Metric::ALL
            .iter()
            .map(|&m| (m, self.get(platform, m)))
            .collect()
    }

    /// Install a whole column (as returned by a backend's `capabilities()`).
    pub fn set_column(&mut self, platform: Platform, column: &[(Metric, Support)]) {
        for &(m, s) in column {
            self.set(platform, m, s);
        }
    }

    /// Count of [`Support::Yes`] cells for a platform.
    pub fn yes_count(&self, platform: Platform) -> usize {
        Metric::ALL
            .iter()
            .filter(|&&m| self.get(platform, m) == Support::Yes)
            .count()
    }

    /// Render the matrix in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34}{:>10}{:>7}{:>13}{:>7}\n",
            "", "Xeon Phi", "NVML", "Blue Gene/Q", "RAPL"
        ));
        let mut current_group: Option<MetricGroup> = None;
        for &m in &Metric::ALL {
            if current_group != Some(m.group()) {
                current_group = Some(m.group());
                // TotalPower is its own group header row in the paper.
                if m != Metric::TotalPower {
                    out.push_str(&format!("{}\n", m.group().label()));
                }
            }
            let indent = if m == Metric::TotalPower { "" } else { "  " };
            out.push_str(&format!(
                "{:<34}{:>10}{:>7}{:>13}{:>7}\n",
                format!("{indent}{}", m.label()),
                self.get(Platform::XeonPhi, m).symbol(),
                self.get(Platform::Nvml, m).symbol(),
                self.get(Platform::BlueGeneQ, m).symbol(),
                self.get(Platform::Rapl, m).symbol(),
            ));
        }
        out
    }
}

impl Default for CapabilityMatrix {
    fn default() -> Self {
        Self::new()
    }
}

/// The reconstruction of the published Table I (see the module docs for the
/// fidelity caveat). This is the ground truth the platform crates' own
/// `capabilities()` introspection is tested against.
pub fn paper_matrix() -> CapabilityMatrix {
    use Metric::*;
    use Platform::*;
    use Support::*;
    let mut m = CapabilityMatrix::new();
    // (metric, phi, nvml, bgq, rapl)
    let rows: [(Metric, Support, Support, Support, Support); 21] = [
        (TotalPower, Yes, Yes, Yes, Yes),
        (Voltage, Yes, No, Yes, No),
        (Current, Yes, No, Yes, No),
        (PciExpressPower, Yes, No, Yes, NotApplicable),
        (MainMemoryPower, Yes, No, Yes, Yes),
        (DieTemp, Yes, Yes, No, No),
        (DdrGddrTemp, Yes, No, No, No),
        (DeviceTemp, Yes, Yes, Yes, No),
        (IntakeTemp, Yes, No, NotApplicable, NotApplicable),
        (ExhaustTemp, Yes, No, NotApplicable, NotApplicable),
        (MemUsed, Yes, Yes, No, No),
        (MemFree, Yes, Yes, No, No),
        (MemSpeed, Yes, No, No, No),
        (MemFrequency, Yes, Yes, No, No),
        (MemVoltage, Yes, No, Yes, No),
        (MemClockRate, Yes, Yes, No, No),
        (ProcVoltage, Yes, No, Yes, No),
        (ProcFrequency, Yes, Yes, No, No),
        (ProcClockRate, Yes, Yes, No, No),
        (FanSpeed, Yes, Yes, NotApplicable, NotApplicable),
        (PowerLimitGetSet, Yes, Yes, No, Yes),
    ];
    for (metric, phi, nvml, bgq, rapl) in rows {
        m.set(XeonPhi, metric, phi);
        m.set(Nvml, metric, nvml);
        m.set(BlueGeneQ, metric, bgq);
        m.set(Rapl, metric, rapl);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_covered_once() {
        assert_eq!(Metric::ALL.len(), 21);
        let mut seen = std::collections::HashSet::new();
        for m in Metric::ALL {
            assert!(seen.insert(m), "duplicate metric {m:?}");
        }
    }

    #[test]
    fn groups_partition_rows() {
        use MetricGroup::*;
        let count = |g: MetricGroup| Metric::ALL.iter().filter(|m| m.group() == g).count();
        assert_eq!(count(Power), 5);
        assert_eq!(count(Temperature), 5);
        assert_eq!(count(MainMemory), 6);
        assert_eq!(count(Processor), 3);
        assert_eq!(count(Fans), 1);
        assert_eq!(count(Limits), 1);
    }

    #[test]
    fn default_cell_is_no() {
        let m = CapabilityMatrix::new();
        assert_eq!(m.get(Platform::Rapl, Metric::TotalPower), Support::No);
    }

    #[test]
    fn paper_matrix_universal_row() {
        // "Just about the only data point collectible on all platforms is
        // total power consumption" (paper, §IV).
        let m = paper_matrix();
        for p in Platform::ALL {
            assert_eq!(m.get(p, Metric::TotalPower), Support::Yes, "{p}");
        }
        // And it is the *only* row with four Yes cells.
        let universal: Vec<Metric> = Metric::ALL
            .iter()
            .copied()
            .filter(|&metric| {
                Platform::ALL
                    .iter()
                    .all(|&p| m.get(p, metric) == Support::Yes)
            })
            .collect();
        assert_eq!(universal, vec![Metric::TotalPower]);
    }

    #[test]
    fn paper_matrix_na_cells_match_extracted_text() {
        // These N/A placements are literally visible in the extracted PDF
        // text and must match exactly.
        let m = paper_matrix();
        use Metric::*;
        use Platform::*;
        use Support::NotApplicable as NA;
        assert_eq!(m.get(Rapl, PciExpressPower), NA);
        for metric in [IntakeTemp, ExhaustTemp, FanSpeed] {
            assert_eq!(m.get(BlueGeneQ, metric), NA, "{metric:?}");
            assert_eq!(m.get(Rapl, metric), NA, "{metric:?}");
        }
    }

    #[test]
    fn phi_is_the_most_capable_platform() {
        // §II-D: the Phi exposes the broadest telemetry; the paper's own
        // Table I shows a full Xeon Phi column.
        let m = paper_matrix();
        let phi = m.yes_count(Platform::XeonPhi);
        for p in [Platform::Nvml, Platform::BlueGeneQ, Platform::Rapl] {
            assert!(phi > m.yes_count(p), "{p} >= Phi");
        }
        assert_eq!(phi, 21);
    }

    #[test]
    fn render_contains_all_rows_and_groups() {
        let text = paper_matrix().render();
        assert!(text.contains("Xeon Phi"));
        assert!(text.contains("Blue Gene/Q"));
        assert!(text.contains("Temperature"));
        assert!(text.contains("Get/Set Power Limit"));
        assert!(text.contains("N/A"));
        assert_eq!(text.lines().count(), 1 + 21 + 5); // header + rows + group headers
    }

    #[test]
    fn column_roundtrip() {
        let m = paper_matrix();
        let col = m.column(Platform::Nvml);
        let mut m2 = CapabilityMatrix::new();
        m2.set_column(Platform::Nvml, &col);
        assert_eq!(m2.column(Platform::Nvml), col);
    }
}
