//! Wrapping integer energy counters.
//!
//! RAPL exposes energy as a 32-bit counter in units of `1 / 2^ESU` joules
//! (`MSR_RAPL_POWER_UNIT`). The counter silently wraps; a reader that polls
//! less often than the wrap period cannot distinguish "small delta" from
//! "small delta + one wrap" — the paper's warning that sampling intervals
//! beyond ~60 seconds produce erroneous data. [`EnergyCounter`] models the
//! hardware side; the single-wrap correction (and its failure beyond one
//! wrap) lives with the reader in `rapl-sim`.

use simkit::{SimDuration, SimTime};

/// Static description of a wrapping energy counter.
#[derive(Clone, Copy, Debug)]
pub struct EnergyCounterSpec {
    /// Joules per count (e.g. `2^-16` J for a 16-bit energy-status unit).
    pub unit_joules: f64,
    /// Counter width in bits; the counter wraps at `2^width`.
    pub width_bits: u32,
    /// Refresh cadence of the counter register.
    pub update_period: SimDuration,
}

impl EnergyCounterSpec {
    /// Counter modulus, `2^width`.
    pub fn modulus(&self) -> u64 {
        1u64 << self.width_bits
    }

    /// Joules accumulated per full wrap.
    pub fn wrap_joules(&self) -> f64 {
        self.modulus() as f64 * self.unit_joules
    }

    /// Time to wrap at a constant power draw.
    pub fn wrap_time_at(&self, watts: f64) -> SimDuration {
        assert!(watts > 0.0);
        SimDuration::from_secs_f64(self.wrap_joules() / watts)
    }
}

/// A hardware energy counter driven by a cumulative-energy oracle.
#[derive(Clone, Copy, Debug)]
pub struct EnergyCounter {
    spec: EnergyCounterSpec,
}

impl EnergyCounter {
    /// Create a counter with the given spec.
    pub fn new(spec: EnergyCounterSpec) -> Self {
        assert!(spec.unit_joules > 0.0, "unit must be positive");
        assert!(
            (1..=63).contains(&spec.width_bits),
            "width must be 1..=63 bits"
        );
        EnergyCounter { spec }
    }

    /// The counter's static description.
    pub fn spec(&self) -> &EnergyCounterSpec {
        &self.spec
    }

    /// Raw register value at time `t`, given cumulative energy in joules
    /// since `t = 0` as `energy(t)`.
    ///
    /// The register only refreshes every `update_period`, so queries between
    /// refreshes observe the previous generation — matching RAPL's ~1 ms
    /// update grid.
    pub fn raw<F: Fn(SimTime) -> f64>(&self, t: SimTime, energy: F) -> u64 {
        let gen_t = t.grid_floor(SimTime::ZERO, self.spec.update_period);
        let joules = energy(gen_t);
        debug_assert!(joules >= 0.0, "cumulative energy went negative");
        let counts = (joules / self.spec.unit_joules) as u64;
        counts % self.spec.modulus()
    }

    /// Delta between two raw readings assuming **at most one wrap** occurred
    /// between them — the correction every real RAPL reader applies. If more
    /// than one wrap actually occurred the result is silently wrong, which is
    /// precisely the >60 s sampling hazard of the paper.
    pub fn delta_counts(&self, earlier_raw: u64, later_raw: u64) -> u64 {
        if later_raw >= earlier_raw {
            later_raw - earlier_raw
        } else {
            later_raw + self.spec.modulus() - earlier_raw
        }
    }

    /// Energy in joules for a wrap-corrected count delta.
    pub fn counts_to_joules(&self, counts: u64) -> f64 {
        counts as f64 * self.spec.unit_joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> EnergyCounterSpec {
        EnergyCounterSpec {
            unit_joules: 1.0 / (1u64 << 16) as f64, // classic 15.3 uJ ESU
            width_bits: 32,
            update_period: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn spec_derived_quantities() {
        let s = spec();
        assert_eq!(s.modulus(), 1u64 << 32);
        assert!((s.wrap_joules() - 65_536.0).abs() < 1e-9);
        // At 100 W, wraps in ~655 s.
        let wrap = s.wrap_time_at(100.0);
        assert!((wrap.as_secs_f64() - 655.36).abs() < 0.01);
    }

    #[test]
    fn raw_respects_update_grid() {
        let c = EnergyCounter::new(spec());
        // 100 J/s cumulative energy.
        let energy = |t: SimTime| 100.0 * t.as_secs_f64();
        let a = c.raw(SimTime::from_micros(1_400), energy);
        let b = c.raw(SimTime::from_micros(1_900), energy); // same 1 ms slot
        assert_eq!(a, b);
        let d = c.raw(SimTime::from_micros(2_100), energy); // next slot
        assert!(d > a);
    }

    #[test]
    fn single_wrap_corrected() {
        let c = EnergyCounter::new(spec());
        let m = c.spec().modulus();
        assert_eq!(c.delta_counts(m - 10, 5), 15);
        assert_eq!(c.delta_counts(100, 200), 100);
        assert_eq!(c.delta_counts(0, 0), 0);
    }

    #[test]
    fn double_wrap_is_silently_wrong() {
        // This is the documented failure mode, so pin it in a test: after two
        // full wraps plus 7 counts, the corrected delta reports only 7.
        let c = EnergyCounter::new(spec());
        let start_raw = 0u64;
        let true_counts = 2 * c.spec().modulus() + 7;
        let end_raw = true_counts % c.spec().modulus();
        assert_eq!(c.delta_counts(start_raw, end_raw), 7);
    }

    #[test]
    fn counter_wraps_against_real_energy_fn() {
        let c = EnergyCounter::new(spec());
        // 1000 W -> wrap every 65.536 s.
        let energy = |t: SimTime| 1_000.0 * t.as_secs_f64();
        let t1 = SimTime::from_secs(65);
        let t2 = SimTime::from_secs(66);
        let (r1, r2) = (c.raw(t1, energy), c.raw(t2, energy));
        assert!(r2 < r1, "expected wrap between 65 s and 66 s");
        let joules = c.counts_to_joules(c.delta_counts(r1, r2));
        assert!((joules - 1_000.0).abs() < 0.1, "got {joules} J");
    }

    #[test]
    fn counts_roundtrip() {
        let c = EnergyCounter::new(spec());
        let j = c.counts_to_joules(65_536);
        assert!((j - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn invalid_width_rejected() {
        EnergyCounter::new(EnergyCounterSpec {
            unit_joules: 1.0,
            width_bits: 64,
            update_period: SimDuration::from_millis(1),
        });
    }
}
