//! String generation from a regex subset.
//!
//! Supports what this workspace's patterns use: literal characters,
//! character classes with ranges (`[A-Za-z0-9-]`), the `.` wildcard
//! (anything printable except newline, plus a few non-ASCII stressors),
//! and the `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers. Unbounded
//! quantifiers are capped at 8 repetitions.

use crate::rng::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// Characters `.` draws from: printable ASCII (including space and tab,
/// excluding newline, per regex `.` semantics) plus non-ASCII stressors.
fn any_char(rng: &mut TestRng) -> char {
    const EXTRAS: [char; 6] = ['\t', 'é', 'λ', '中', '€', '\u{00a0}'];
    if rng.one_in(8) {
        EXTRAS[rng.below(EXTRAS.len() as u64) as usize]
    } else {
        // ' ' (0x20) ..= '~' (0x7E)
        char::from(0x20 + rng.below(0x5F) as u8)
    }
}

#[derive(Debug)]
enum Atom {
    Any,
    Set(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '-' => {
                // A range if we have a previous char and a next bound;
                // otherwise a literal '-'.
                match (prev, chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                        for v in (lo as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        set.push('-');
                        prev = Some('-');
                    }
                }
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                set.push(esc);
                prev = Some(esc);
            }
            _ => {
                set.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    set
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in pattern {pattern:?}"))
            };
            match spec.split_once(',') {
                None => {
                    let n = parse(&spec);
                    (n, n)
                }
                Some((m, "")) => (parse(m), parse(m) + UNBOUNDED_CAP),
                Some((m, n)) => (parse(m), parse(n)),
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Set(parse_class(&mut chars, pattern)),
            '.' => Atom::Any,
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                Atom::Set(vec![esc])
            }
            other => Atom::Set(vec![other]),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generate a string matching `pattern` (see module docs for the subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
        for _ in 0..count {
            match &piece.atom {
                Atom::Any => out.push(any_char(rng)),
                Atom::Set(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::new(1234);
        (0..200)
            .map(|_| generate_from_pattern(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn class_with_ranges_and_literal_dash() {
        for s in gen_many("[A-Za-z0-9-]{1,20}") {
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn bounded_counts() {
        for s in gen_many("[a-z]{2,4}") {
            assert!((2..=4).contains(&s.len()), "{s:?}");
        }
        for s in gen_many("[a-z]{3}") {
            assert_eq!(s.len(), 3, "{s:?}");
        }
    }

    #[test]
    fn dot_never_emits_newline() {
        for s in gen_many(".{0,30}") {
            assert!(!s.contains('\n'), "{s:?}");
            assert!(s.chars().count() <= 30, "{s:?}");
        }
    }

    #[test]
    fn concatenation_and_single_atoms() {
        for s in gen_many("[a-z][a-z0-9]{0,8}") {
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!((1..=9).contains(&s.len()), "{s:?}");
        }
        for s in gen_many("[a-c]") {
            assert!(matches!(s.as_str(), "a" | "b" | "c"), "{s:?}");
        }
    }

    #[test]
    fn optional_star_plus() {
        for s in gen_many("a?b+c*") {
            assert!(s.contains('b'), "{s:?}");
            let bs = s.chars().filter(|&c| c == 'b').count();
            assert!((1..=8).contains(&bs), "{s:?}");
        }
    }

    #[test]
    fn escapes_are_literal() {
        for s in gen_many(r"x\.y") {
            assert_eq!(s, "x.y");
        }
        for s in gen_many(r"[\]a]") {
            assert!(matches!(s.as_str(), "]" | "a"), "{s:?}");
        }
    }
}
