//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a self-contained property-testing harness exposing the
//! subset of the proptest API its tests use: the `proptest!` macro,
//! `prop_assert*`/`prop_assume!`, range / regex-string / tuple / collection
//! strategies, `any::<T>()`, `prop_map`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the exact generated inputs
//!   (generation is deterministic per test name and case index, so failures
//!   reproduce);
//! * **regex strategies** support the subset used here: char classes with
//!   ranges, `.`, literals, and `{m}`/`{m,n}`/`?`/`+`/`*` quantifiers;
//! * the default case count is 64 (override with the `PROPTEST_CASES`
//!   environment variable or `ProptestConfig::with_cases`).

#![warn(missing_docs)]

pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace (collection/option/bool/sample strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::of;
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::ANY;
    }
    /// Sampling helpers.
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a `proptest!` body; on failure the case fails
/// with the formatted message (and the generated inputs are reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*),
            __a,
            __b
        );
    }};
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)*),
            __a
        );
    }};
}

/// Discard the current case (it counts as a reject, not a pass or failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $crate::__proptest_fn!{ @parse
            cfg = ($cfg);
            metas = ($(#[$meta])*);
            name = ($name);
            body = ($body);
            acc = ();
            args = ($($args)*);
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fn {
    // Peel `pat in expr,` off the front of the argument list.
    (@parse
        cfg = ($cfg:expr);
        metas = ($($m:tt)*);
        name = ($name:ident);
        body = ($body:block);
        acc = ($($acc:tt)*);
        args = ($pat:pat in $strat:expr, $($rest:tt)*);
    ) => {
        $crate::__proptest_fn!{ @parse
            cfg = ($cfg);
            metas = ($($m)*);
            name = ($name);
            body = ($body);
            acc = ($($acc)* [$pat][$strat]);
            args = ($($rest)*);
        }
    };
    // Final argument without a trailing comma.
    (@parse
        cfg = ($cfg:expr);
        metas = ($($m:tt)*);
        name = ($name:ident);
        body = ($body:block);
        acc = ($($acc:tt)*);
        args = ($pat:pat in $strat:expr);
    ) => {
        $crate::__proptest_fn!{ @parse
            cfg = ($cfg);
            metas = ($($m)*);
            name = ($name);
            body = ($body);
            acc = ($($acc)* [$pat][$strat]);
            args = ();
        }
    };
    // All arguments consumed: emit the test fn.
    (@parse
        cfg = ($cfg:expr);
        metas = ($($m:tt)*);
        name = ($name:ident);
        body = ($body:block);
        acc = ($([$pat:pat][$strat:expr])+);
        args = ();
    ) => {
        $($m)*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), __rng) ),+ ,);
                let __repr = ::std::format!("{:?}", &__vals);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ( $($pat),+ ,) = __vals;
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                (__outcome, __repr)
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..10,
            b in -5i64..5,
            f in 0.25f64..0.75,
            g in 0.0f64..=1.0,
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        fn regex_strategies_match_shape(
            s in "[a-z]{1,5}",
            t in "[A-Za-z0-9-]{1,20}",
            u in "[a-c]",
            mixed in "x[0-9]{2}y",
        ) {
            prop_assert!((1..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((1..=20).contains(&t.chars().count()));
            prop_assert!(t.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
            prop_assert!(matches!(u.as_str(), "a" | "b" | "c"));
            prop_assert!(mixed.starts_with('x') && mixed.ends_with('y'));
            prop_assert_eq!(mixed.len(), 4);
        }

        #[test]
        fn collections_and_options(
            v in prop::collection::vec(0u8..10, 2..6),
            o in prop::option::of(1u32..5),
            flag in prop::bool::ANY,
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
            let _ = flag;
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn prop_map_and_tuples(pair in (1u64..100, "[a-z]{3}").prop_map(|(n, s)| (n * 2, s))) {
            prop_assert!(pair.0 >= 2 && pair.0 < 200);
            prop_assert_eq!(pair.1.len(), 3);
            prop_assert_ne!(pair.0, 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    #[allow(unnameable_test_items)]
    fn failing_property_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(n in 0u8..4) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let s = (0u64..1000, "[a-z]{1,8}");
        let a: Vec<_> = (0..20)
            .map(|i| s.generate(&mut TestRng::for_case("det", i)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|i| s.generate(&mut TestRng::for_case("det", i)))
            .collect();
        assert_eq!(a, b);
    }
}
