//! Deterministic test-case RNG (SplitMix64).
//!
//! Each (test name, case index) pair gets an independent, reproducible
//! stream, so a reported failure replays exactly without a persistence
//! file.

/// A small deterministic generator for strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, used to derive a per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The generator for case `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut state = fnv1a(test_name.as_bytes()) ^ case.wrapping_mul(GOLDEN_GAMMA);
        // Warm up so nearby case indices decorrelate immediately.
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening multiply avoids modulo bias well enough for test data.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A coin flip with probability `num/denom`.
    pub fn one_in(&mut self, denom: u64) -> bool {
        self.below(denom) == 0
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_differ() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
