//! Case execution: config, errors, and the loop behind `proptest!`.

use crate::rng::TestRng;
use std::fmt;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config with a specific case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// A config whose case count scales with the `PROPTEST_CASES`
    /// environment variable: `base` is the count when the variable holds
    /// the default (64); setting it lower (CI quick mode) or higher
    /// (thorough runs) scales `base` proportionally, never below one
    /// case. Heavy suites use this instead of [`Self::with_cases`] so a
    /// single knob paces the whole workspace.
    pub fn scaled(base: u32) -> Self {
        let default = Self::default();
        let cases = ((u64::from(base) * u64::from(default.cases)) / 64).max(1) as u32;
        ProptestConfig { cases, ..default }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (assumption not met).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "assumption not met: {m}"),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Drive one property: `case` generates inputs from the provided RNG and
/// returns `(outcome, input_repr)`. Panics (failing the enclosing `#[test]`)
/// on the first violated case, reporting the case number and inputs.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (std::thread::Result<Result<(), TestCaseError>>, String),
{
    let mut executed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while executed < config.cases {
        let mut rng = TestRng::for_case(test_name, case_index);
        let (outcome, repr) = case(&mut rng);
        match outcome {
            Ok(Ok(())) => executed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{test_name}': too many prop_assume! rejections \
                     ({rejected}) — strengthen the strategies"
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest '{test_name}' failed at case {case_index} \
                     (after {executed} passing cases):\n{msg}\ninputs: {repr}"
                );
            }
            Err(payload) => {
                panic!(
                    "proptest '{test_name}' panicked at case {case_index} \
                     (after {executed} passing cases): {}\ninputs: {repr}",
                    panic_message(payload.as_ref())
                );
            }
        }
        case_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_all_cases_pass() {
        let cfg = ProptestConfig::with_cases(10);
        let mut n = 0;
        run_cases(&cfg, "ok", |_rng| {
            n += 1;
            (Ok(Ok(())), String::new())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "inputs: (7,)")]
    fn failure_reports_inputs() {
        let cfg = ProptestConfig::with_cases(10);
        run_cases(&cfg, "bad", |_rng| {
            (Ok(Err(TestCaseError::fail("nope"))), "(7,)".to_owned())
        });
    }

    #[test]
    fn rejects_do_not_count_as_cases() {
        let cfg = ProptestConfig::with_cases(5);
        let mut attempts = 0;
        run_cases(&cfg, "rej", |_rng| {
            attempts += 1;
            if attempts % 2 == 0 {
                (Ok(Err(TestCaseError::reject("skip"))), String::new())
            } else {
                (Ok(Ok(())), String::new())
            }
        });
        assert!(attempts > 5);
    }

    #[test]
    #[should_panic(expected = "panicked at case")]
    fn child_panic_is_reported_with_inputs() {
        let cfg = ProptestConfig::with_cases(3);
        run_cases(&cfg, "boom", |_rng| {
            let r = std::panic::catch_unwind(|| -> Result<(), TestCaseError> { panic!("kaboom") });
            (r, "(1,)".to_owned())
        });
    }
}
