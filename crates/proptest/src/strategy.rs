//! Value-generation strategies (the proptest subset this workspace uses).

use crate::rng::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retrying; panics if the
    /// predicate rejects too persistently).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------- integers

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                // Bias toward the endpoints: boundary bugs live there.
                if rng.one_in(8) {
                    return self.start;
                }
                if rng.one_in(8) {
                    return self.end - 1;
                }
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if rng.one_in(8) {
                    return lo;
                }
                if rng.one_in(8) {
                    return hi;
                }
                let off = (u128::from(rng.next_u64()) % width) as i128;
                (lo as i128 + off) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Full width, with the edges over-represented.
                if rng.one_in(8) {
                    return 0;
                }
                if rng.one_in(8) {
                    return <$t>::MAX;
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ------------------------------------------------------------------ floats

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if rng.one_in(8) {
            return self.start;
        }
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // unit_f64 < 1, but rounding can still land on `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if rng.one_in(8) {
            return lo;
        }
        if rng.one_in(8) {
            return hi;
        }
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let v = (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// ------------------------------------------------------------------- bools

/// Strategy for `bool` (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

/// Uniform boolean strategy.
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

// ----------------------------------------------------------------- strings

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// ------------------------------------------------------------------ tuples

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

// ------------------------------------------------------------- collections

/// Accepted size specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for vectors of another strategy's values.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `Option<T>` (`prop::option::of`).
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.one_in(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of(strategy)`: `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

// ---------------------------------------------------------------- sampling

/// An index into a collection whose length is only known at use time
/// (`prop::sample::Index`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Project onto `[0, len)`; `len` must be nonzero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.raw % len as u64) as usize
    }

    /// Borrow the element this index selects from `slice`.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64(),
        }
    }
}

// --------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn int_range_bounds_hold() {
        let s = 5u64..17;
        let mut r = rng();
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn endpoints_are_reachable() {
        let s = 0u8..4;
        let mut r = rng();
        let vals: std::collections::HashSet<u8> = (0..300).map(|_| s.generate(&mut r)).collect();
        assert!(vals.contains(&0) && vals.contains(&3));
    }

    #[test]
    fn f64_exclusive_range_excludes_end() {
        let s = 0.0f64..1.0;
        let mut r = rng();
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let s = vec(0u8..3, 2..5);
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let s = of(0u8..3);
        let mut r = rng();
        let vals: Vec<_> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
    }

    #[test]
    fn index_projects_into_len() {
        let mut r = rng();
        for _ in 0..100 {
            let i = Index::arbitrary(&mut r);
            assert!(i.index(7) < 7);
            let slice = [10, 20, 30];
            assert!(slice.contains(i.get(&slice)));
        }
    }

    #[test]
    fn filter_applies_predicate() {
        let s = (0u8..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
