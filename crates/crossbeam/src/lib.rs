//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the `crossbeam` API the workloads use:
//!
//! * [`scope`] — scoped threads whose closures receive the scope handle
//!   (so they can spawn siblings), built on `std::thread::scope`;
//! * [`channel::bounded`] — a bounded MPSC channel over
//!   `std::sync::mpsc::sync_channel`.
//!
//! Like crossbeam, [`scope`] returns `Err` instead of unwinding when a
//! spawned thread panics.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Bounded channels (the `crossbeam-channel` subset used here).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full. Errors when every
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty. Errors when every
        /// sender is gone and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterate until the channel closes.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Create a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// A scope handle passed to [`scope`]'s closure and to every spawned
/// thread's closure.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to join a thread spawned in a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// handle, so it can spawn further siblings (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope in which borrowing, scoped threads can be spawned.
/// All spawned threads are joined before `scope` returns. Returns `Err`
/// with the panic payload if `f` or any unjoined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut total = 0u64;
        scope(|s| {
            let h1 = s.spawn(|_| data[..2].iter().sum::<u64>());
            let h2 = s.spawn(|_| data[2..].iter().sum::<u64>());
            total = h1.join().unwrap() + h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn panicking_child_yields_err() {
        let r = scope(|s| {
            s.spawn::<_, ()>(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn bounded_channel_delivers_in_order_and_closes() {
        let (tx, rx) = channel::bounded::<u64>(4);
        scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let h = s.spawn(move |_| {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let got = h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        })
        .unwrap();
    }
}
