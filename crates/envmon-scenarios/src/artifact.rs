//! Replication artifacts: the CSV + one-line-JSON pair every scenario
//! replication emits.
//!
//! Both renderings are deterministic down to the byte: floats always go
//! through [`fmt_f64`] (fixed six decimal places, no locale, no `%g`
//! shortest-round-trip wobble), fields are emitted in declaration order,
//! and nothing timestamps itself with wall-clock state. Same `(exp, rep,
//! seed)` ⇒ same bytes, which is what the golden files and the
//! determinism referee in `scenario_sweep` compare.

/// One machine-checked invariant, evaluated per replication.
#[derive(Clone, Debug)]
pub struct Invariant {
    /// Short stable name (`cap-never-exceeded`, `duty-monotone`, …).
    pub name: &'static str,
    /// Whether the replication satisfied it.
    pub pass: bool,
    /// Human-readable evidence (margins, counts) for the summary line.
    pub detail: String,
}

impl Invariant {
    /// Convenience constructor.
    pub fn new(name: &'static str, pass: bool, detail: impl Into<String>) -> Self {
        Invariant {
            name,
            pass,
            detail: detail.into(),
        }
    }
}

/// Everything one replication of one scenario produced.
#[derive(Clone, Debug)]
pub struct Replication {
    /// Scenario key (`exp1`..`exp4`).
    pub exp: &'static str,
    /// Replication index within the run.
    pub rep: usize,
    /// The seed this replication ran under.
    pub seed: u64,
    /// The per-decision (or per-mechanism) CSV trace, header included.
    pub csv: String,
    /// Ordered scalar summary fields beyond `exp`/`rep`/`seed`; values are
    /// pre-rendered (numbers via [`fmt_f64`] or integer formatting).
    pub summary: Vec<(&'static str, String)>,
    /// The invariants this replication was checked against.
    pub invariants: Vec<Invariant>,
}

impl Replication {
    /// Whether every invariant passed.
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|i| i.pass)
    }

    /// The one-line JSON summary row. Values that parse as numbers are
    /// emitted bare; everything else is quoted. `invariant` is the AND of
    /// all checks (1/0) so a grep-level gate needs no JSON parser.
    pub fn json(&self) -> String {
        let mut out = format!(
            "{{\"exp\": \"{}\", \"rep\": {}, \"seed\": {}",
            self.exp, self.rep, self.seed
        );
        for (key, value) in &self.summary {
            if value.parse::<f64>().is_ok() {
                out.push_str(&format!(", \"{key}\": {value}"));
            } else {
                out.push_str(&format!(", \"{key}\": \"{value}\""));
            }
        }
        out.push_str(&format!(
            ", \"invariant\": {}}}",
            if self.passed() { 1 } else { 0 }
        ));
        out
    }

    /// The golden-file artifact: CSV, then the JSON summary line, then one
    /// line per invariant verdict.
    pub fn artifact(&self) -> String {
        let mut out = self.csv.clone();
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(&self.json());
        out.push('\n');
        for inv in &self.invariants {
            out.push_str(&format!(
                "# invariant {} {}: {}\n",
                inv.name,
                if inv.pass { "PASS" } else { "FAIL" },
                inv.detail
            ));
        }
        out
    }

    /// One human-readable line for `repro scenarios` output.
    pub fn summary_line(&self) -> String {
        let fields: Vec<String> = self
            .summary
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!(
            "{} rep{} seed={:#018x} {} [{}]",
            self.exp,
            self.rep,
            self.seed,
            fields.join(" "),
            if self.passed() {
                "ok"
            } else {
                "INVARIANT FAILED"
            }
        )
    }
}

/// The one float formatter every artifact goes through: fixed six decimal
/// places, so renderings never depend on shortest-round-trip printing.
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep() -> Replication {
        Replication {
            exp: "exp1",
            rep: 2,
            seed: 7,
            csv: "a,b\n1,2".into(),
            summary: vec![("mean_w", fmt_f64(31.25)), ("note", "text".into())],
            invariants: vec![Invariant::new("cap", true, "margin 0.5 W")],
        }
    }

    #[test]
    fn json_quotes_only_non_numeric_fields() {
        let j = rep().json();
        assert!(j.contains("\"mean_w\": 31.250000"), "{j}");
        assert!(j.contains("\"note\": \"text\""), "{j}");
        assert!(j.ends_with("\"invariant\": 1}"), "{j}");
    }

    #[test]
    fn artifact_terminates_every_section_with_newline() {
        let a = rep().artifact();
        assert!(a.starts_with("a,b\n1,2\n{\"exp\""));
        assert!(a.ends_with("# invariant cap PASS: margin 0.5 W\n"));
    }

    #[test]
    fn failed_invariant_flips_the_flag() {
        let mut r = rep();
        r.invariants
            .push(Invariant::new("other", false, "off by 2"));
        assert!(!r.passed());
        assert!(r.json().ends_with("\"invariant\": 0}"));
        assert!(r.summary_line().contains("INVARIANT FAILED"));
    }
}
