//! exp3 — multi-tenant co-schedule on shared EMON node-card domains.
//!
//! Two jobs land on one BG/Q midplane slice: an MMPS-shaped tenant on
//! node card 0 and a Gaussian-elimination tenant on node card 1, four
//! monitoring ranks each. All eight agents poll EMON; a
//! [`moneq::CollectionPlan`] groups each card's four ranks into one
//! sharing domain, so per generation one leader pays the EMON access-path
//! cost and three followers receive the replayed generation for free.
//!
//! The contention story is the paper's: EMON data is *per node card*, so
//! co-resident tenants read the same registers — the plan changes who
//! pays, never what anyone sees. Three drives of the same cluster pin
//! that down.
//!
//! Invariants checked per replication:
//! * `plan-transparent` — planned and naive co-run output files are
//!   byte-identical.
//! * `tenant-isolated` — tenant A's four files are byte-identical whether
//!   tenant B's job is computing on card 1 or the card sits idle: a
//!   co-tenant's *workload* never leaks into a neighbor domain's data.
//!   (The monitoring topology itself stays fixed — cluster size changes
//!   init cost and with it every poll timestamp, which is modeled, not a
//!   leak.)
//! * `cache-ledger-exact` — exactly one cache lookup per poll: per
//!   generation the card's leader misses, its three followers hit, zero
//!   bypasses.
//! * `cost-ratio-exact` — naive collection time is exactly
//!   `domain_size ×` the planned leaders' collection time.

use crate::artifact::{fmt_f64, Invariant, Replication};
use bgq_sim::{BgqConfig, BgqMachine};
use hpc_workloads::{GaussianElimination, Mmps};
use moneq::backends::BgqBackend;
use moneq::{ClusterResult, ClusterRun, CollectionPlan, OutputFile};
use simkit::SimTime;
use std::sync::Arc;

/// exp3 knobs. [`Default`] is the catalog configuration.
#[derive(Clone, Debug)]
pub struct Exp3Config {
    /// Monitoring ranks per tenant (= per node card).
    pub ranks_per_tenant: usize,
    /// Run horizon.
    pub horizon: SimTime,
    /// Parallel-drive knob, as in [`crate::Exp1Config`].
    pub parallel: Option<(usize, usize, usize)>,
}

impl Default for Exp3Config {
    fn default() -> Self {
        Exp3Config {
            ranks_per_tenant: 4,
            horizon: SimTime::from_secs(30),
            parallel: None,
        }
    }
}

/// Everything one exp3 replication produced.
pub struct Exp3Run {
    /// The rendered artifact.
    pub replication: Replication,
    /// Rendered co-run (planned) output file per rank.
    pub files: Vec<String>,
}

/// Assemble the machine: tenant A (MMPS) on card 0, and — when tenant B
/// is "computing" — a Gaussian-elimination job on card 1. With B idle the
/// card still exists and is still monitored; only its workload is gone.
fn machine(seed: u64, tenant_b_computing: bool) -> Arc<BgqMachine> {
    let mut m = BgqMachine::new(BgqConfig::default(), seed);
    m.assign_job(&[0], &Mmps::figure1().profile());
    if tenant_b_computing {
        m.assign_job(&[1], &GaussianElimination::figure3().profile());
    }
    Arc::new(m)
}

/// Drive `ranks` agents over `machine`, rank `r` watching node card
/// `r / ranks_per_tenant`, with or without the sharing plan.
fn drive(
    config: &Exp3Config,
    machine: &Arc<BgqMachine>,
    ranks: usize,
    plan: Option<CollectionPlan>,
) -> ClusterResult {
    let mut run = ClusterRun::launch(
        ranks,
        None, // EMON's own 560 ms floor.
        |rank| {
            Box::new(BgqBackend::new(
                Arc::clone(machine),
                rank / config.ranks_per_tenant,
            ))
        },
        |rank| format!("tenant{rank:02}"),
        SimTime::ZERO,
    );
    if let Some(plan) = plan {
        run = run.with_collection_plan(plan);
    }
    if let Some((workers, chunk, cpus)) = config.parallel {
        run = run
            .with_par_agents(workers)
            .with_chunk_size(chunk)
            .with_host_cpus(cpus);
    }
    run.run_until(config.horizon);
    run.finalize(config.horizon)
}

/// Run one exp3 replication.
pub fn run(config: &Exp3Config, rep: usize, seed: u64) -> Exp3Run {
    let ranks = 2 * config.ranks_per_tenant;
    let co = machine(seed, true);
    let b_idle = machine(seed, false);

    let planned = drive(
        config,
        &co,
        ranks,
        Some(CollectionPlan::shared(config.ranks_per_tenant)),
    );
    let naive = drive(config, &co, ranks, None);
    let idle_b = drive(config, &b_idle, ranks, None);

    let planned_files: Vec<String> = planned.files.iter().map(OutputFile::render).collect();
    let naive_files: Vec<String> = naive.files.iter().map(OutputFile::render).collect();
    let idle_files: Vec<String> = idle_b.files.iter().map(OutputFile::render).collect();

    // ---- invariants -----------------------------------------------------
    let plan_transparent = planned_files == naive_files;
    // Tenant A's files must not change with B's workload; B's own files
    // must (otherwise the check proves nothing).
    let tenant_isolated = idle_files[..config.ranks_per_tenant]
        == naive_files[..config.ranks_per_tenant]
        && idle_files[config.ranks_per_tenant..] != naive_files[config.ranks_per_tenant..];

    let cache = &planned.cache;
    let polls: u64 = planned.overheads.iter().map(|o| o.polls).sum();
    let polls_per_rank = planned.overheads[0].polls;
    // One lookup per poll; per generation the card's leader misses and
    // its three followers hit.
    let expected_misses = 2 * polls_per_rank;
    let expected_hits = polls - expected_misses;
    let ledger_exact = cache.bypasses == 0
        && cache.misses == expected_misses
        && cache.hits == expected_hits
        && planned.overheads.iter().all(|o| o.polls == polls_per_rank);

    let planned_collection: u64 = planned
        .overheads
        .iter()
        .map(|o| o.collection.as_nanos())
        .sum();
    let naive_collection: u64 = naive
        .overheads
        .iter()
        .map(|o| o.collection.as_nanos())
        .sum();
    let cost_ratio_exact = naive_collection == config.ranks_per_tenant as u64 * planned_collection;

    // ---- artifact -------------------------------------------------------
    let mut csv = String::from("rank,card,polls,planned_collection_ns,naive_collection_ns\n");
    for rank in 0..ranks {
        csv.push_str(&format!(
            "{rank},{},{},{},{}\n",
            rank / config.ranks_per_tenant,
            planned.overheads[rank].polls,
            planned.overheads[rank].collection.as_nanos(),
            naive.overheads[rank].collection.as_nanos(),
        ));
    }

    let replication = Replication {
        exp: "exp3",
        rep,
        seed,
        csv,
        summary: vec![
            ("ranks", ranks.to_string()),
            ("polls", polls.to_string()),
            ("cache_hits", cache.hits.to_string()),
            ("cache_misses", cache.misses.to_string()),
            (
                "collection_ratio",
                fmt_f64(naive_collection as f64 / planned_collection as f64),
            ),
        ],
        invariants: vec![
            Invariant::new(
                "plan-transparent",
                plan_transparent,
                "planned and naive co-run files byte-identical",
            ),
            Invariant::new(
                "tenant-isolated",
                tenant_isolated,
                "tenant A files unchanged by tenant B's workload; B's own files do change",
            ),
            Invariant::new(
                "cache-ledger-exact",
                ledger_exact,
                format!(
                    "hits {} misses {} bypasses {} over {polls} polls",
                    cache.hits, cache.misses, cache.bypasses
                ),
            ),
            Invariant::new(
                "cost-ratio-exact",
                cost_ratio_exact,
                format!(
                    "naive {naive_collection} ns == {} x planned {planned_collection} ns",
                    config.ranks_per_tenant
                ),
            ),
        ],
    };

    Exp3Run {
        replication,
        files: planned_files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_is_transparent_and_exact() {
        let out = run(&Exp3Config::default(), 0, 5);
        assert!(out.replication.passed(), "{:?}", out.replication.invariants);
        assert_eq!(out.files.len(), 8);
    }

    #[test]
    fn emon_minimum_interval_produces_polls() {
        let out = run(&Exp3Config::default(), 0, 5);
        let polls = out
            .replication
            .summary
            .iter()
            .find(|(k, _)| *k == "polls")
            .map(|(_, v)| v.parse::<u64>().expect("count"))
            .expect("summary field");
        // 30 s / 560 ms ≈ 54 polls per rank, 8 ranks.
        assert!(polls > 8 * 40, "polls {polls}");
    }
}
