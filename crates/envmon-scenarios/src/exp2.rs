//! exp2 — thermal-throttling feedback on NVML temperature.
//!
//! Four ranks run the same busy K20 kernel at four ambient temperatures.
//! Each rank's [`crate::LiveGpuBackend`] polls an RC-thermal plant
//! ([`nvml_sim::LiveGpu`]); a hysteresis controller engages the clock
//! throttle when the diode crosses the trip point and releases it only
//! below the lower threshold, on a 1 s decision cadence. Throttling
//! changes the power the plant dissipates, which changes the temperature
//! the next poll reads — a genuine feedback loop, not a replayed trace.
//!
//! Invariants checked per replication:
//! * `duty-monotone` — the throttle duty cycle is monotone nondecreasing
//!   in ambient temperature across ranks.
//! * `hysteresis-bands` — every engage decision saw a diode at/above the
//!   trip point, every release saw one at/below the release point.
//! * `switches-agree` — the plant's switch history is exactly the
//!   controller's engage/release edge sequence (the actuator did what the
//!   controller decided, nothing else touched it).

use crate::artifact::{fmt_f64, Invariant, Replication};
use crate::gpu::LiveGpuBackend;
use hpc_workloads::{Channel, WorkloadProfile};
use moneq::{ClusterRun, ControlHook, OutputFile, Records};
use nvml_sim::{GpuSpec, LiveGpu};
use powermodel::DemandTrace;
use simkit::rng::mix64;
use simkit::{CadenceGate, ControlTrace, Hysteresis, SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// exp2 knobs. [`Default`] is the catalog configuration.
#[derive(Clone, Debug)]
pub struct Exp2Config {
    /// Ambient temperature per rank, °C, in nondecreasing order.
    pub ambients_c: Vec<f64>,
    /// Trip point: engage at/above this diode temperature, °C.
    pub trip_c: f64,
    /// Release point: disengage at/below this diode temperature, °C.
    pub release_c: f64,
    /// Clock scale while throttled (fraction of full demand).
    pub throttle_scale: f64,
    /// Diode read noise, °C (1 σ).
    pub noise_sd_c: f64,
    /// Run horizon.
    pub horizon: SimTime,
    /// Session polling interval.
    pub interval: SimDuration,
    /// Decision cadence.
    pub cadence: SimDuration,
    /// Parallel-drive knob, as in [`crate::Exp1Config`].
    pub parallel: Option<(usize, usize, usize)>,
    /// `false` = open loop (plants heat uncontrolled; byte-identity
    /// baseline).
    pub control: bool,
}

impl Default for Exp2Config {
    fn default() -> Self {
        Exp2Config {
            ambients_c: vec![24.0, 32.0, 40.0, 48.0],
            trip_c: 70.0,
            release_c: 64.0,
            throttle_scale: 0.3,
            noise_sd_c: 0.2,
            horizon: SimTime::from_secs(240),
            interval: SimDuration::from_millis(100),
            cadence: SimDuration::from_secs(1),
            parallel: None,
            control: true,
        }
    }
}

/// Everything one exp2 replication produced.
pub struct Exp2Run {
    /// The rendered artifact.
    pub replication: Replication,
    /// Rendered output file per rank.
    pub files: Vec<String>,
    /// Throttle duty cycle per rank, in rank (= ambient) order.
    pub duty_cycles: Vec<f64>,
}

/// The busy kernel: idle lead-in, then a saturating accelerator phase.
/// The lead-in keeps the initial diode temperature at the *idle* steady
/// state, so every rank heats from a credible power-on point.
fn busy_profile(horizon: SimTime) -> WorkloadProfile {
    let mut profile = WorkloadProfile::new("exp2-busy", horizon.saturating_since(SimTime::ZERO));
    let mut accel = DemandTrace::zero();
    accel.set(SimTime::from_secs(5), 1.0);
    profile.set_demand(Channel::Accelerator, accel);
    let mut mem = DemandTrace::zero();
    mem.set(SimTime::from_secs(5), 0.8);
    profile.set_demand(Channel::AcceleratorMemory, mem);
    profile
}

/// The per-rank controller: hysteresis on the diode, actuating the clock
/// throttle.
struct ThrottleHook {
    gpu: Arc<LiveGpu>,
    hysteresis: Hysteresis,
    gate: CadenceGate,
    trace: Arc<Mutex<ControlTrace>>,
}

impl ControlHook for ThrottleHook {
    fn after_poll(&mut self, t: SimTime, records: &Records, new_from: usize) {
        let mut diode = None;
        for i in new_from..records.len() {
            let p = records.get(i).expect("index in range");
            if !p.stale {
                if let Some(c) = p.temp_c {
                    diode = Some(c);
                }
            }
        }
        let Some(temp) = diode else { return };
        if !self.gate.try_fire(t) {
            return;
        }
        let engaged = self.hysteresis.update(temp);
        self.gpu.set_throttle(t, engaged);
        self.trace.lock().expect("trace lock").record(
            t,
            temp,
            if engaged { 0.0 } else { 1.0 },
            engaged,
        );
    }
}

/// Run one exp2 replication.
pub fn run(config: &Exp2Config, rep: usize, seed: u64) -> Exp2Run {
    let ranks = config.ambients_c.len();
    let profile = busy_profile(config.horizon);
    let gpus: Vec<Arc<LiveGpu>> = config
        .ambients_c
        .iter()
        .map(|&ambient| {
            Arc::new(LiveGpu::new(
                GpuSpec::k20(),
                &profile,
                ambient,
                config.throttle_scale,
            ))
        })
        .collect();
    let traces: Vec<Arc<Mutex<ControlTrace>>> = (0..ranks)
        .map(|_| Arc::new(Mutex::new(ControlTrace::new())))
        .collect();

    let mut run = ClusterRun::launch(
        ranks,
        Some(config.interval),
        |rank| {
            Box::new(LiveGpuBackend::new(
                Arc::clone(&gpus[rank]),
                mix64(seed, rank as u64),
                config.noise_sd_c,
            ))
        },
        |rank| format!("gpu{rank:02}"),
        SimTime::ZERO,
    );
    if let Some((workers, chunk, cpus)) = config.parallel {
        run = run
            .with_par_agents(workers)
            .with_chunk_size(chunk)
            .with_host_cpus(cpus);
    }
    if config.control {
        run.attach_control_hooks(|rank| {
            Some(Box::new(ThrottleHook {
                gpu: Arc::clone(&gpus[rank]),
                hysteresis: Hysteresis::new(config.trip_c, config.release_c),
                gate: CadenceGate::new(SimTime::ZERO, config.cadence),
                trace: Arc::clone(&traces[rank]),
            }) as Box<dyn ControlHook>)
        });
    }
    run.run_until(config.horizon);
    let result = run.finalize(config.horizon);

    // ---- invariants -----------------------------------------------------
    let duty_cycles: Vec<f64> = traces
        .iter()
        .map(|t| t.lock().expect("trace lock").duty_cycle())
        .collect();
    let duty_monotone = duty_cycles.windows(2).all(|w| w[0] <= w[1] + 1e-12);

    let mut bands_ok = true;
    let mut switches_agree = true;
    for (gpu, trace) in gpus.iter().zip(&traces) {
        let trace = trace.lock().expect("trace lock");
        let mut edges = Vec::new();
        let mut last = false;
        for row in trace.rows() {
            if row.engaged != last {
                edges.push((row.at, row.engaged));
                // An engage edge must have seen a diode at/above the trip
                // point, a release edge one at/below the release point.
                if row.engaged {
                    bands_ok &= row.observed >= config.trip_c;
                } else {
                    bands_ok &= row.observed <= config.release_c;
                }
                last = row.engaged;
            }
        }
        switches_agree &= gpu.switch_history() == edges;
    }

    // ---- artifact -------------------------------------------------------
    let mut csv = String::from("rank,ambient_c,at_ns,diode_c,engaged\n");
    for (rank, trace) in traces.iter().enumerate() {
        let ambient = config.ambients_c[rank];
        for row in trace.lock().expect("trace lock").rows() {
            csv.push_str(&format!(
                "{rank},{},{},{},{}\n",
                fmt_f64(ambient),
                row.at.as_nanos(),
                fmt_f64(row.observed),
                u8::from(row.engaged),
            ));
        }
    }
    let duty_rendered: Vec<String> = duty_cycles.iter().map(|&d| fmt_f64(d)).collect();
    let switches: usize = gpus.iter().map(|g| g.switch_history().len()).sum();

    let replication = Replication {
        exp: "exp2",
        rep,
        seed,
        csv,
        summary: vec![
            ("ranks", ranks.to_string()),
            ("duty_cycles", duty_rendered.join("/")),
            ("switches", switches.to_string()),
        ],
        invariants: vec![
            Invariant::new(
                "duty-monotone",
                duty_monotone,
                format!("duty by ambient: {}", duty_rendered.join(" <= ")),
            ),
            Invariant::new(
                "hysteresis-bands",
                bands_ok,
                format!(
                    "edges respect trip {} / release {} C",
                    fmt_f64(config.trip_c),
                    fmt_f64(config.release_c)
                ),
            ),
            Invariant::new(
                "switches-agree",
                switches_agree,
                format!("{switches} plant switches match controller edges"),
            ),
        ],
    };

    Exp2Run {
        replication,
        files: result.files.iter().map(OutputFile::render).collect(),
        duty_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_ambients_throttle_more() {
        let out = run(&Exp2Config::default(), 0, 11);
        assert!(out.replication.passed(), "{:?}", out.replication.invariants);
        // The two cool ranks never trip; the two hot ones genuinely do.
        assert_eq!(out.duty_cycles[0], 0.0);
        assert!(out.duty_cycles[3] > 0.5, "duty {:?}", out.duty_cycles);
        assert!(out.duty_cycles[2] > 0.0);
    }

    #[test]
    fn open_loop_never_switches() {
        let cfg = Exp2Config {
            control: false,
            horizon: SimTime::from_secs(60),
            ..Exp2Config::default()
        };
        let out = run(&cfg, 0, 11);
        assert_eq!(out.duty_cycles, vec![0.0; 4]);
        assert!(out.replication.passed());
    }
}
