//! exp4 — diurnal load-follow across every registry mechanism.
//!
//! One compressed day: 24 "hours" of 5 s each, demand following a diurnal
//! curve (trough before dawn, peak mid-afternoon) on every workload
//! channel. The same profile is handed to
//! [`envmon_analysis::registry::mechanisms_on`], so *all* registry
//! mechanisms — EMON, RAPL, NVML, both Phi paths, the OCC — watch the
//! same day through their own hardware, intervals, and noise. Adding a
//! sixth mechanism to the registry automatically adds it here; nothing is
//! hand-listed.
//!
//! Invariants checked per replication:
//! * `diurnal-follow` — every mechanism's peak-hour mean power exceeds
//!   its trough-hour mean (the mechanism actually tracks load).
//! * `all-mechanisms-report` — every mechanism produced records for at
//!   least 20 of the 24 hours (nobody silently dropped out).

use crate::artifact::{fmt_f64, Invariant, Replication};
use envmon_analysis::registry::mechanisms_on;
use hpc_workloads::{Channel, WorkloadProfile};
use moneq::{MonEq, MonEqConfig};
use powermodel::DemandTrace;
use simkit::{SimDuration, SimTime};

/// Demand level per "hour", a compressed diurnal curve: trough around
/// 02:00–04:00, peak at 13:00–14:00.
pub const DIURNAL_LEVELS: [f64; 24] = [
    0.18, 0.15, 0.14, 0.14, 0.15, 0.20, 0.30, 0.42, 0.55, 0.66, 0.75, 0.82, 0.87, 0.90, 0.88, 0.83,
    0.76, 0.68, 0.60, 0.52, 0.44, 0.36, 0.28, 0.22,
];

/// Trough window: hours averaged for the low side of the invariant.
pub const TROUGH_HOURS: std::ops::Range<usize> = 0..5;
/// Peak window: hours averaged for the high side of the invariant.
pub const PEAK_HOURS: std::ops::Range<usize> = 11..16;

/// exp4 knobs. [`Default`] is the catalog configuration.
#[derive(Clone, Debug)]
pub struct Exp4Config {
    /// Virtual seconds per "hour".
    pub hour: SimDuration,
}

impl Default for Exp4Config {
    fn default() -> Self {
        Exp4Config {
            hour: SimDuration::from_secs(5),
        }
    }
}

/// Everything one exp4 replication produced.
pub struct Exp4Run {
    /// The rendered artifact.
    pub replication: Replication,
    /// `(mechanism, hourly mean watts)` in registry order.
    pub hourly_means: Vec<(&'static str, Vec<f64>)>,
}

/// The diurnal day on every channel the platform models read.
fn diurnal_profile(hour: SimDuration, horizon: SimTime) -> WorkloadProfile {
    let mut profile = WorkloadProfile::new("exp4-diurnal", horizon.saturating_since(SimTime::ZERO));
    let channel_scale = [
        (Channel::Cpu, 1.0),
        (Channel::Memory, 0.8),
        (Channel::Network, 0.6),
        (Channel::Accelerator, 1.0),
        (Channel::AcceleratorMemory, 0.8),
    ];
    for (channel, scale) in channel_scale {
        let mut trace = DemandTrace::zero();
        for (h, &level) in DIURNAL_LEVELS.iter().enumerate() {
            trace.set(
                SimTime::from_nanos(hour.as_nanos() * h as u64),
                level * scale,
            );
        }
        profile.set_demand(channel, trace);
    }
    profile
}

/// Run one exp4 replication.
pub fn run(config: &Exp4Config, rep: usize, seed: u64) -> Exp4Run {
    let horizon = SimTime::from_nanos(config.hour.as_nanos() * DIURNAL_LEVELS.len() as u64);
    let profile = diurnal_profile(config.hour, horizon);

    let mut hourly_means = Vec::new();
    let mut follows = true;
    let mut reports = true;
    let mut csv = String::from("mechanism,hour,mean_w,records\n");
    let mut peaks = Vec::new();

    for mechanism in mechanisms_on(seed, horizon, &profile) {
        let session = MonEq::initialize(
            0,
            vec![mechanism.build(0)],
            MonEqConfig::default(),
            SimTime::ZERO,
        );
        let result = session.finalize(horizon);

        let hours = DIURNAL_LEVELS.len();
        let mut sums = vec![0.0f64; hours];
        let mut counts = vec![0usize; hours];
        for p in &result.file.points {
            if p.stale {
                continue;
            }
            let h = (p.timestamp.as_nanos() / config.hour.as_nanos()) as usize;
            if h < hours {
                sums[h] += p.watts;
                counts[h] += 1;
            }
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
            .collect();
        for (h, mean) in means.iter().enumerate() {
            csv.push_str(&format!(
                "{},{h},{},{}\n",
                mechanism.name,
                fmt_f64(*mean),
                counts[h]
            ));
        }

        let window_mean = |hours: std::ops::Range<usize>| {
            let w: Vec<f64> = hours.clone().map(|h| means[h]).collect();
            w.iter().sum::<f64>() / w.len() as f64
        };
        let trough = window_mean(TROUGH_HOURS);
        let peak = window_mean(PEAK_HOURS);
        follows &= peak > trough + 1.0;
        reports &= counts.iter().filter(|&&n| n > 0).count() >= 20;
        peaks.push(format!("{}:{}", mechanism.name, fmt_f64(peak - trough)));
        hourly_means.push((mechanism.name, means));
    }

    let replication = Replication {
        exp: "exp4",
        rep,
        seed,
        csv,
        summary: vec![
            ("mechanisms", hourly_means.len().to_string()),
            ("peak_minus_trough_w", peaks.join("/")),
        ],
        invariants: vec![
            Invariant::new(
                "diurnal-follow",
                follows,
                "every mechanism's peak-hour mean exceeds its trough-hour mean by > 1 W",
            ),
            Invariant::new(
                "all-mechanisms-report",
                reports,
                "every mechanism reported in at least 20 of 24 hours",
            ),
        ],
    };

    Exp4Run {
        replication,
        hourly_means,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envmon_analysis::registry;

    #[test]
    fn every_registry_mechanism_follows_the_day() {
        let out = run(&Exp4Config::default(), 0, 3);
        assert!(out.replication.passed(), "{:?}", out.replication.invariants);
        // Iterates the registry, not a hand-kept list.
        assert_eq!(out.hourly_means.len(), registry::NAMES.len());
        for (name, means) in &out.hourly_means {
            assert_eq!(means.len(), 24, "{name}");
        }
    }
}
