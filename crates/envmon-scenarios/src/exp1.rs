//! exp1 — closed-loop power cap: RAPL energy in, `MSR_PKG_POWER_LIMIT` out.
//!
//! Each rank runs a Gaussian-elimination socket plant
//! ([`rapl_sim::CappedSocket`], zero ramp tau) observed through the real
//! [`moneq::backends::RaplBackend`] poll path. A per-rank `CapHook` feeds the
//! freshest Package-domain watts into a clamped PI regulator on a 500 ms
//! actuation cadence; each command is *written through the MSR* (so it is
//! quantized to the register's 1/8 W counts) and the decoded register
//! value is what the plant enforces — the loop actuates exactly what it
//! programmed, never its un-quantized intention.
//!
//! Invariants checked per replication:
//! * `cap-plant-exact` — sampling the plant between consecutive limit
//!   applications, package power never exceeds the limit in force (exact,
//!   1 nW tolerance: the zero-tau inversion is algebraic).
//! * `cap-measured-tick` — every *measured* window over which the limit
//!   was constant stays within one RAPL energy tick plus the counter's
//!   ±50k-cycle jitter allowance of the limit.
//! * `cmd-in-range` — every actuated limit is finite and inside the
//!   controller clamp, faults or no faults (the fault property test leans
//!   on this one).

use crate::artifact::{fmt_f64, Invariant, Replication};
use hpc_workloads::GaussianElimination;
use moneq::backends::RaplBackend;
use moneq::{ClusterRun, ControlHook, OutputFile, Records};
use rapl_sim::{
    CappedSocket, MsrAccess, MsrDevice, PowerLimit, PowerSource, RaplDomain, SocketSpec,
    MSR_PKG_POWER_LIMIT,
};
use simkit::rng::mix64;
use simkit::{
    CadenceGate, ControlTrace, FaultPlan, NoiseStream, PiController, SimDuration, SimTime,
};
use std::sync::{Arc, Mutex};

/// Lowest limit the controller may program, watts.
pub const LIMIT_FLOOR_W: f64 = 20.0;
/// Highest limit the controller may program, watts (the socket TDP).
pub const LIMIT_CEIL_W: f64 = 130.0;

/// exp1 knobs. [`Default`] is the catalog configuration.
#[derive(Clone, Debug)]
pub struct Exp1Config {
    /// Number of independently capped ranks.
    pub ranks: usize,
    /// The power-cap setpoint, watts.
    pub cap_w: f64,
    /// Run horizon.
    pub horizon: SimTime,
    /// Session polling interval.
    pub interval: SimDuration,
    /// Actuation cadence (one MSR write per period at most).
    pub cadence: SimDuration,
    /// `Some((workers, chunk, host_cpus))` drives the cluster in parallel;
    /// `None` stays serial. Outputs must be byte-identical either way.
    pub parallel: Option<(usize, usize, usize)>,
    /// Optional fault plan for the sensing path (the actuation path stays
    /// clean: the paper's failure mode is the *mechanism*, not the MSR
    /// write port).
    pub faults: Option<FaultPlan>,
    /// `false` runs the same plants open-loop (no hook attached) — the
    /// byte-identity baseline for `tests/scenario_prop.rs`.
    pub control: bool,
}

impl Default for Exp1Config {
    fn default() -> Self {
        Exp1Config {
            ranks: 4,
            cap_w: 32.0,
            horizon: SimTime::from_secs(60),
            interval: SimDuration::from_millis(100),
            cadence: SimDuration::from_millis(500),
            parallel: None,
            faults: None,
            control: true,
        }
    }
}

/// Everything one exp1 replication produced (artifact plus the raw state
/// the byte-identity tests compare).
pub struct Exp1Run {
    /// The rendered artifact.
    pub replication: Replication,
    /// Rendered output file per rank.
    pub files: Vec<String>,
    /// Per-rank limit application history.
    pub limit_histories: Vec<Vec<(SimTime, PowerLimit)>>,
}

/// The per-rank controller: PI on Package watts, actuating through an MSR
/// write handle onto the same plant the backend observes.
struct CapHook {
    plant: Arc<CappedSocket>,
    msr: MsrDevice,
    pi: PiController,
    gate: CadenceGate,
    trace: Arc<Mutex<ControlTrace>>,
}

impl ControlHook for CapHook {
    fn after_poll(&mut self, t: SimTime, records: &Records, new_from: usize) {
        // Freshest non-stale Package reading from this fire; a fully
        // glitched fire (or the baseline-only first poll) actuates nothing
        // and does not consume the cadence slot.
        let mut observed = None;
        for i in new_from..records.len() {
            let p = records.get(i).expect("index in range");
            if !p.stale && p.domain == RaplDomain::Pkg.name() {
                observed = Some(p.watts);
            }
        }
        let Some(watts) = observed else { return };
        if !self.gate.try_fire(t) {
            return;
        }
        let command = self.pi.update(t, watts);
        let wanted = PowerLimit {
            enabled: true,
            limit_watts: command,
            window_secs: 1.0,
        };
        self.msr
            .write(MSR_PKG_POWER_LIMIT, wanted.encode(&self.msr.units()))
            .expect("root write handle");
        // Enforce what the register now *holds* (quantized), not what the
        // controller wished for.
        let programmed = *self.msr.power_limit();
        self.plant.apply_limit(t, programmed);
        self.trace
            .lock()
            .expect("trace lock")
            .record(t, watts, programmed.limit_watts, true);
    }
}

/// The limit in force at `t`, if any limit has been applied by then.
fn limit_in_force(history: &[(SimTime, PowerLimit)], t: SimTime) -> Option<PowerLimit> {
    history
        .iter()
        .rev()
        .find(|(at, _)| *at <= t)
        .map(|(_, l)| *l)
}

/// Run one exp1 replication.
pub fn run(config: &Exp1Config, rep: usize, seed: u64) -> Exp1Run {
    let profile = GaussianElimination::figure3().profile();
    let plants: Vec<Arc<CappedSocket>> = (0..config.ranks)
        .map(|_| Arc::new(CappedSocket::new(SocketSpec::default(), &profile)))
        .collect();
    let traces: Vec<Arc<Mutex<ControlTrace>>> = (0..config.ranks)
        .map(|_| Arc::new(Mutex::new(ControlTrace::new())))
        .collect();

    let mut run = ClusterRun::launch(
        config.ranks,
        Some(config.interval),
        |rank| {
            let source = Arc::clone(&plants[rank]) as Arc<dyn PowerSource>;
            let backend = RaplBackend::new(source, MsrAccess::root(), mix64(seed, rank as u64))
                .expect("root access");
            match &config.faults {
                Some(plan) => Box::new(backend.with_faults(plan, &format!("socket{rank}"))),
                None => Box::new(backend),
            }
        },
        |rank| format!("cap{rank:02}"),
        SimTime::ZERO,
    );
    if let Some((workers, chunk, cpus)) = config.parallel {
        run = run
            .with_par_agents(workers)
            .with_chunk_size(chunk)
            .with_host_cpus(cpus);
    }
    if config.control {
        run.attach_control_hooks(|rank| {
            let source = Arc::clone(&plants[rank]) as Arc<dyn PowerSource>;
            let msr = MsrDevice::open(
                source,
                0,
                MsrAccess::root(),
                &NoiseStream::new(mix64(seed, 0x1000 + rank as u64)),
            )
            .expect("root access");
            Some(Box::new(CapHook {
                plant: Arc::clone(&plants[rank]),
                msr,
                // Gains sized for the zero-lag plant: the measured power
                // IS the previous command when the cap binds, so the
                // discrete loop (kp + ki terms at the 0.5 s cadence) needs
                // kp well under 1 to be stable; (0.4, 0.4) puts the
                // closed-loop eigenvalues at ~0.86 and -0.46.
                pi: PiController::new(config.cap_w, 0.4, 0.4, LIMIT_FLOOR_W, LIMIT_CEIL_W),
                gate: CadenceGate::new(SimTime::ZERO, config.cadence),
                trace: Arc::clone(&traces[rank]),
            }) as Box<dyn ControlHook>)
        });
    }
    run.run_until(config.horizon);
    let result = run.finalize(config.horizon);

    // ---- invariants -----------------------------------------------------
    let histories: Vec<Vec<(SimTime, PowerLimit)>> =
        plants.iter().map(|p| p.limit_history()).collect();
    let units = rapl_sim::PowerUnits::sandy_bridge_sim();
    let jitter_s = 50_000.0 / SocketSpec::default().frequency_hz;

    // (a) plant-side, exact: between applications the plant never exceeds
    // the limit in force.
    let mut plant_excess: f64 = f64::NEG_INFINITY;
    for (plant, history) in plants.iter().zip(&histories) {
        for (i, (at, limit)) in history.iter().enumerate() {
            if !limit.enabled {
                continue;
            }
            let until = history.get(i + 1).map_or(config.horizon, |(next, _)| *next);
            // Strictly before `until`: at the boundary instant the next
            // application is already in force.
            let mut t = *at;
            while t < until {
                let pkg = plant.domain_power(RaplDomain::Pkg, t);
                plant_excess = plant_excess.max(pkg - limit.limit_watts);
                t = t.saturating_add(SimDuration::from_millis(50));
            }
        }
    }
    let have_limits = histories.iter().any(|h| !h.is_empty());
    let plant_ok = !config.control || !have_limits || plant_excess <= 1e-9;

    // (b) measured-side: windows with a constant in-force limit stay
    // within one energy tick + jitter of that limit. A 2 ms guard before
    // the window start skips windows whose opening snapshot may predate
    // the latest MSR write by one counter generation.
    let guard = SimDuration::from_millis(2);
    let mut measured_excess: f64 = f64::NEG_INFINITY;
    let mut windows_checked = 0usize;
    let mut pkg_sum = 0.0;
    let mut pkg_n = 0usize;
    for (file, history) in result.files.iter().zip(&histories) {
        let mut prev: Option<SimTime> = None;
        for p in &file.points {
            if p.domain != RaplDomain::Pkg.name() || p.stale {
                continue;
            }
            pkg_sum += p.watts;
            pkg_n += 1;
            let t1 = p.timestamp;
            if let Some(t0) = prev {
                let l0 = limit_in_force(history, minus(t0, guard));
                let l1 = limit_in_force(history, t1);
                if let (Some(l0), Some(l1)) = (l0, l1) {
                    if l0.enabled && l0.limit_watts == l1.limit_watts {
                        let dt = t1.saturating_since(t0).as_secs_f64();
                        // One energy tick, plus the span error from the
                        // counters updating on a jittered ~1 ms grid: the
                        // opening snapshot can reflect a generation up to
                        // one update period (+ jitter) older than t0.
                        let generation_s = 0.001 + jitter_s;
                        let tol = (units.joules_per_count() + l0.limit_watts * generation_s) / dt;
                        measured_excess = measured_excess.max(p.watts - l0.limit_watts - tol);
                        windows_checked += 1;
                    }
                }
            }
            prev = Some(t1);
        }
    }
    let measured_ok = !config.control || windows_checked == 0 || measured_excess <= 0.0;

    // (c) every actuated command in clamp and finite.
    let mut commands = 0usize;
    let mut range_ok = true;
    for trace in &traces {
        for row in trace.lock().expect("trace lock").rows() {
            commands += 1;
            // The MSR quantizes downward, so allow one power count below
            // the floor.
            let lo = LIMIT_FLOOR_W - units.watts_per_count();
            if !row.command.is_finite() || row.command < lo || row.command > LIMIT_CEIL_W {
                range_ok = false;
            }
        }
    }

    // ---- artifact -------------------------------------------------------
    let mut csv = String::from("rank,at_ns,observed_w,limit_w\n");
    for (rank, trace) in traces.iter().enumerate() {
        for row in trace.lock().expect("trace lock").rows() {
            csv.push_str(&format!(
                "{rank},{},{},{}\n",
                row.at.as_nanos(),
                fmt_f64(row.observed),
                fmt_f64(row.command),
            ));
        }
    }
    let final_limit = traces[0]
        .lock()
        .expect("trace lock")
        .rows()
        .last()
        .map_or(0.0, |r| r.command);
    let mean_pkg = if pkg_n == 0 {
        0.0
    } else {
        pkg_sum / pkg_n as f64
    };

    let replication = Replication {
        exp: "exp1",
        rep,
        seed,
        csv,
        summary: vec![
            ("ranks", config.ranks.to_string()),
            ("actuations", commands.to_string()),
            ("final_limit_w", fmt_f64(final_limit)),
            ("mean_pkg_w", fmt_f64(mean_pkg)),
            ("windows_checked", windows_checked.to_string()),
        ],
        invariants: vec![
            Invariant::new(
                "cap-plant-exact",
                plant_ok,
                format!("max plant excess {} W", fmt_f64(plant_excess.max(-1.0))),
            ),
            Invariant::new(
                "cap-measured-tick",
                measured_ok,
                format!(
                    "max measured excess beyond tolerance {} W over {windows_checked} windows",
                    fmt_f64(measured_excess.max(-1.0))
                ),
            ),
            Invariant::new(
                "cmd-in-range",
                range_ok,
                format!(
                    "{commands} commands in [{}, {}] W",
                    fmt_f64(LIMIT_FLOOR_W),
                    fmt_f64(LIMIT_CEIL_W)
                ),
            ),
        ],
    };

    Exp1Run {
        replication,
        files: result.files.iter().map(OutputFile::render).collect(),
        limit_histories: histories,
    }
}

/// `t - d`, clamped at the origin.
fn minus(t: SimTime, d: SimDuration) -> SimTime {
    SimTime::from_nanos(t.as_nanos().saturating_sub(d.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Exp1Config {
        Exp1Config {
            ranks: 2,
            horizon: SimTime::from_secs(20),
            ..Exp1Config::default()
        }
    }

    #[test]
    fn cap_binds_and_invariants_hold() {
        let out = run(&quick(), 0, 42);
        assert!(out.replication.passed(), "{:?}", out.replication.invariants);
        // The loop actually engaged: limits were written and the plant
        // settled near the cap.
        assert!(out.limit_histories.iter().all(|h| h.len() >= 10));
        let last = out.limit_histories[0].last().expect("applied").1;
        assert!(
            (last.limit_watts - 32.0).abs() < 3.0,
            "settled limit {} W",
            last.limit_watts
        );
    }

    #[test]
    fn open_loop_never_touches_the_register() {
        let out = run(
            &Exp1Config {
                control: false,
                ..quick()
            },
            0,
            42,
        );
        assert!(out.limit_histories.iter().all(Vec::is_empty));
        assert!(out.replication.passed());
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = run(&quick(), 0, 7);
        let b = run(&quick(), 0, 7);
        assert_eq!(a.replication.artifact(), b.replication.artifact());
        assert_eq!(a.files, b.files);
    }
}
