//! A MonEQ backend over the closed-loop GPU plant.
//!
//! The registry's [`moneq::backends::NvmlBackend`] reads a *replayed* device whose
//! power trace is fixed at construction — fine for passive observation,
//! useless for feedback, where the controller's own throttle decisions
//! change what the sensor reads next. [`LiveGpuBackend`] instead polls an
//! interior-mutable [`nvml_sim::LiveGpu`]: every poll advances the
//! thermal RC integrator to the poll instant and reports board power plus
//! the diode temperature (with NVML's ±0.2 °C read noise), exactly the
//! observation exp2's hysteresis controller feeds on.

use moneq::backend::{EnvBackend, Poll, ReadError};
use moneq::DataPoint;
use nvml_sim::LiveGpu;
use powermodel::{Metric, Platform, Support};
use simkit::{NoiseStream, SimDuration, SimTime};
use std::sync::Arc;

/// One live (feedback-capable) GPU served over the NVML poll interface.
pub struct LiveGpuBackend {
    gpu: Arc<LiveGpu>,
    noise: NoiseStream,
    temp_noise_sd: f64,
}

impl LiveGpuBackend {
    /// Wrap a shared plant. `seed` keys the sensor-noise stream; use a
    /// per-rank seed so ranks draw independently. `temp_noise_sd` is the
    /// diode read noise in °C (0.0 for a noiseless golden run).
    pub fn new(gpu: Arc<LiveGpu>, seed: u64, temp_noise_sd: f64) -> Self {
        LiveGpuBackend {
            gpu,
            noise: NoiseStream::new(seed).child("live-gpu-temp"),
            temp_noise_sd,
        }
    }
}

impl EnvBackend for LiveGpuBackend {
    fn name(&self) -> &'static str {
        "nvml-live"
    }

    fn platform(&self) -> Platform {
        nvml_sim::PLATFORM
    }

    fn min_interval(&self) -> SimDuration {
        // Same register-refresh floor as the passive NVML backend (§II-C).
        SimDuration::from_millis(60)
    }

    fn poll_cost(&self) -> SimDuration {
        // Two queries per poll: nvmlDeviceGetPowerUsage + GetTemperature.
        nvml_sim::NVML_QUERY_COST * 2
    }

    fn capabilities(&self) -> Vec<(Metric, Support)> {
        nvml_sim::capabilities()
    }

    fn read(&mut self, t: SimTime) -> Result<Poll, ReadError> {
        // `temperature_c` advances the plant's integrator to `t`; the
        // session only ever polls forward, so the monotone-query contract
        // holds (a retry at the same `t` is a zero-width advance).
        let temp = self.gpu.temperature_c(t) + self.temp_noise_sd * self.noise.normal(t.as_nanos());
        let mut p = DataPoint::power(t, "gpu0", "board", self.gpu.power_at(t));
        p.temp_c = Some(temp);
        Ok(Poll::complete(vec![p]))
    }

    fn read_cadence(&self) -> SimDuration {
        SimDuration::from_millis(60)
    }

    // `replayable` stays `false`: the served value depends on the plant's
    // throttle history, not just the query instant.

    fn records_per_poll(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::{Channel, WorkloadProfile};
    use nvml_sim::GpuSpec;
    use powermodel::DemandTrace;

    fn busy_gpu() -> Arc<LiveGpu> {
        let mut p = WorkloadProfile::new("busy", SimDuration::from_secs(60));
        p.set_demand(Channel::Accelerator, DemandTrace::constant(1.0));
        p.set_demand(Channel::AcceleratorMemory, DemandTrace::constant(0.8));
        Arc::new(LiveGpu::new(GpuSpec::k20(), &p, 32.0, 0.3))
    }

    #[test]
    fn poll_reports_power_and_temperature() {
        let mut b = LiveGpuBackend::new(busy_gpu(), 7, 0.0);
        let points = b.poll(SimTime::from_secs(10));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.watts > 100.0, "busy K20 draws real power: {}", p.watts);
        assert!(p.temp_c.expect("diode present") > 32.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_instant() {
        let gpu = busy_gpu();
        let mut a = LiveGpuBackend::new(Arc::clone(&gpu), 7, 0.2);
        let mut b = LiveGpuBackend::new(gpu, 7, 0.2);
        let t = SimTime::from_secs(3);
        assert_eq!(a.poll(t)[0].temp_c, b.poll(t)[0].temp_c);
    }
}
