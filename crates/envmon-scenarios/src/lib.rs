//! # envmon-scenarios — the closed-loop scenario catalog
//!
//! Everything else in this repository *observes*: the mechanisms serve
//! measurements and the analysis crates compare what was served. This
//! crate closes the loop — controllers consume those measurements and
//! write device state back (a power-limit MSR, a clock throttle, a
//! co-schedule), which is where a collection mechanism's latency,
//! staleness, and noise stop being columns in a table and start deciding
//! whether a control system behaves. DESIGN.md §16 covers the
//! architecture; the catalog metadata lives in
//! [`envmon_analysis::scenarios`] and this crate pins itself against it
//! one runner per entry.
//!
//! | Scenario | Loop | Invariant |
//! |---|---|---|
//! | [`exp1`] | RAPL energy → PI → `MSR_PKG_POWER_LIMIT` | plant never exceeds the programmed limit |
//! | [`exp2`] | NVML diode → hysteresis → clock throttle | duty cycle monotone in ambient |
//! | [`exp3`] | co-tenants on shared EMON domains | sharing transparent; ledger and cost exact |
//! | [`exp4`] | diurnal day across the whole registry | every mechanism follows the load |
//!
//! Every replication renders a deterministic CSV + JSON
//! [`artifact::Replication`]: same `(exp, rep, seed)` ⇒ the same bytes,
//! serial or parallel, which the golden files and
//! `tests/scenario_prop.rs` enforce.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod gpu;

pub use artifact::{Invariant, Replication};
pub use exp1::Exp1Config;
pub use exp2::Exp2Config;
pub use exp3::Exp3Config;
pub use exp4::Exp4Config;
pub use gpu::LiveGpuBackend;

/// Run one replication of catalog scenario `exp` (`exp1`..`exp4`) under
/// `seed`, with the catalog-default configuration.
///
/// # Panics
///
/// On an unknown key — callers dispatch from
/// [`envmon_analysis::scenarios::CATALOG`], whose keys this crate pins.
pub fn run_replication(exp: &str, rep: usize, seed: u64) -> Replication {
    match exp {
        "exp1" => exp1::run(&Exp1Config::default(), rep, seed).replication,
        "exp2" => exp2::run(&Exp2Config::default(), rep, seed).replication,
        "exp3" => exp3::run(&Exp3Config::default(), rep, seed).replication,
        "exp4" => exp4::run(&Exp4Config::default(), rep, seed).replication,
        other => panic!("unknown scenario key {other:?}; catalog keys are exp1..exp4"),
    }
}

#[cfg(test)]
mod tests {
    use envmon_analysis::scenarios::CATALOG;

    #[test]
    fn one_runner_per_catalog_entry() {
        // The dispatch above must cover exactly the catalog; a new
        // catalog row without a runner (or vice versa) fails here.
        assert_eq!(
            CATALOG.iter().map(|s| s.key).collect::<Vec<_>>(),
            vec!["exp1", "exp2", "exp3", "exp4"],
        );
    }
}
