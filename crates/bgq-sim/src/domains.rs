//! The seven BG/Q node-card power domains.
//!
//! MonEQ "allows us to read the individual voltage and current data points
//! for each of the 7 BG/Q domains" (§II-A); Figure 2 plots them: Chip Core,
//! DRAM, Link Chip Core, HSS Network, Optics, PCI Express, SRAM.
//!
//! Per-domain idle/dynamic wattages below are calibrated per **node card**
//! (32 nodes) so that the idle node card draws ≈815 W and an MMPS-saturated
//! card ≈1.6 kW — matching the magnitudes printed on the Figure 1/2 axes.

use hpc_workloads::{Channel, WorkloadProfile};
use powermodel::{ComponentSpec, DemandTrace};
use simkit::SimDuration;

/// The seven power domains of a node card, in Figure 2's legend order
/// (top-down by typical magnitude).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Compute chip cores.
    ChipCore,
    /// DDR3 main memory.
    Dram,
    /// Link chip cores.
    LinkChipCore,
    /// High-speed serial (5-D torus) network.
    HssNetwork,
    /// Optical transceivers.
    Optics,
    /// PCI Express.
    PciExpress,
    /// On-chip SRAM rail.
    Sram,
}

impl Domain {
    /// All domains, in legend order.
    pub const ALL: [Domain; 7] = [
        Domain::ChipCore,
        Domain::Dram,
        Domain::LinkChipCore,
        Domain::HssNetwork,
        Domain::Optics,
        Domain::PciExpress,
        Domain::Sram,
    ];

    /// Display name as in the Figure 2 legend.
    pub fn label(self) -> &'static str {
        match self {
            Domain::ChipCore => "Chip Core",
            Domain::Dram => "DRAM",
            Domain::LinkChipCore => "Link Chip Core",
            Domain::HssNetwork => "HSS Network",
            Domain::Optics => "Optics",
            Domain::PciExpress => "PCI Express",
            Domain::Sram => "SRAM",
        }
    }

    /// Nominal rail voltage, used to decompose domain power into the
    /// voltage/current pairs MonEQ reads.
    pub fn rail_voltage(self) -> f64 {
        match self {
            Domain::ChipCore => 0.9,
            Domain::Dram => 1.35,
            Domain::LinkChipCore => 1.0,
            Domain::HssNetwork => 1.5,
            Domain::Optics => 3.3,
            Domain::PciExpress => 12.0,
            Domain::Sram => 0.9,
        }
    }

    /// Per-node-card power component (idle and dynamic watts, ramp).
    pub fn component_spec(self) -> ComponentSpec {
        let (idle_w, dynamic_w) = match self {
            Domain::ChipCore => (350.0, 550.0),
            Domain::Dram => (150.0, 250.0),
            Domain::LinkChipCore => (80.0, 120.0),
            Domain::HssNetwork => (70.0, 180.0),
            Domain::Optics => (100.0, 80.0),
            Domain::PciExpress => (40.0, 30.0),
            Domain::Sram => (25.0, 25.0),
        };
        ComponentSpec {
            name: self.label(),
            idle_w,
            dynamic_w,
            // Node-card power tracks load quickly; the long-looking rises in
            // Figure 1 are polling-interval artifacts, not device lag.
            ramp_tau: SimDuration::from_millis(200),
        }
    }

    /// The workload channel that drives this domain.
    pub fn channel(self) -> Channel {
        match self {
            Domain::ChipCore => Channel::Cpu,
            Domain::Dram => Channel::Memory,
            Domain::LinkChipCore => Channel::Network,
            Domain::HssNetwork => Channel::Network,
            Domain::Optics => Channel::Network,
            Domain::PciExpress => Channel::Io,
            Domain::Sram => Channel::Cpu,
        }
    }

    /// Extract this domain's demand trace from a workload profile.
    pub fn demand_from(self, profile: &WorkloadProfile) -> DemandTrace {
        profile.demand(self.channel())
    }
}

/// Idle power of a whole node card (sum of domain idles), watts.
pub fn node_card_idle_watts() -> f64 {
    Domain::ALL.iter().map(|d| d.component_spec().idle_w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_workloads::Mmps;

    #[test]
    fn seven_domains() {
        assert_eq!(Domain::ALL.len(), 7);
    }

    #[test]
    fn idle_card_near_815_watts() {
        let idle = node_card_idle_watts();
        assert!((idle - 815.0).abs() < 1e-9, "idle {idle}");
    }

    #[test]
    fn mmps_card_lands_in_figure_range() {
        // Steady-state MMPS power: idle + sum(dynamic * level).
        let p = Mmps::figure1().profile();
        let t = simkit::SimTime::from_secs(700);
        let total: f64 = Domain::ALL
            .iter()
            .map(|d| {
                let spec = d.component_spec();
                spec.idle_w + spec.dynamic_w * d.demand_from(&p).level_at(t)
            })
            .sum();
        assert!(
            (1_450.0..1_800.0).contains(&total),
            "MMPS node card at {total} W, outside Figure 1/2 magnitudes"
        );
    }

    #[test]
    fn chip_core_is_largest_domain() {
        let p = Mmps::figure1().profile();
        let t = simkit::SimTime::from_secs(700);
        let power = |d: Domain| {
            let s = d.component_spec();
            s.idle_w + s.dynamic_w * d.demand_from(&p).level_at(t)
        };
        for d in Domain::ALL.iter().skip(1) {
            assert!(
                power(Domain::ChipCore) > power(*d),
                "{} not below Chip Core",
                d.label()
            );
        }
    }

    #[test]
    fn rail_voltages_positive_and_current_consistent() {
        for d in Domain::ALL {
            assert!(d.rail_voltage() > 0.0);
            let spec = d.component_spec();
            let amps = spec.idle_w / d.rail_voltage();
            assert!(amps > 0.0);
        }
    }
}
