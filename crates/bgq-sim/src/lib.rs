//! # bgq-sim — IBM Blue Gene/Q platform model
//!
//! A faithful model of the two environmental-data paths the paper describes
//! for the BG/Q (§II-A), built on Mira's physical organisation:
//!
//! * **Topology** ([`topology`]): rack → midplane (2/rack) → node board
//!   (16/midplane) → compute card (32/board), with `Rxx-Mx-Nxx-Jxx`
//!   location codes. 1,024 nodes and 16,384 cores per rack.
//! * **Bulk power modules** ([`bpm`]): AC→48 V DC conversion feeding each
//!   midplane; the environmental database stores input- and output-side
//!   watts and amps per BPM.
//! * **Environmental database** ([`envdb`]): the DB2-like store fed by a
//!   polling daemon at 60–1,800 s intervals (≈4 min default), including the
//!   ingest-capacity constraint that motivates those long intervals.
//! * **EMON API** ([`emon`]): compute-node-side access to node-card power at
//!   a ~560 ms generation cadence across the 7 power domains, with the
//!   documented quirks: data is the *oldest generation*, domains are not
//!   sampled at the same instant, granularity is one node card (32 nodes),
//!   and each query costs ≈1.10 ms.
//!
//! The machine model ([`machine`]) binds workload profiles to node cards and
//! serves as the ground-truth power oracle both paths observe.
//!
//! ```
//! use bgq_sim::{BgqConfig, BgqMachine, EmonApi};
//! use hpc_workloads::Mmps;
//! use simkit::SimTime;
//!
//! let mut machine = BgqMachine::new(BgqConfig::default(), 42);
//! machine.assign_job(&[0], &Mmps::figure1().profile());
//!
//! // Compute-node side: EMON at node-card granularity.
//! let emon = EmonApi::open(0);
//! let watts = emon.total_power(&machine, SimTime::from_secs(100));
//! assert!(watts > 1_000.0); // an MMPS-loaded card draws ~1.6 kW
//!
//! // Facility side: the environmental database.
//! let daemon = bgq_sim::PollingDaemon::new(bgq_sim::EnvDbConfig::default_4min()).unwrap();
//! let mut db = bgq_sim::EnvDatabase::new();
//! daemon.run(&machine, &mut db, SimTime::from_secs(600));
//! assert!(!db.rows().is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bpm;
pub mod coolant;
pub mod domains;
pub mod emon;
pub mod envdb;
pub mod machine;
pub mod topology;

pub use bpm::{BpmGroup, BpmReading};
pub use coolant::CoolantLoop;
pub use domains::Domain;
pub use emon::{DomainReading, EmonApi, EMON_QUERY_COST};
pub use envdb::{EnvDatabase, EnvDbConfig, EnvRow, PollingDaemon};
pub use machine::{BgqConfig, BgqMachine, NodeCard};
pub use topology::{Location, Topology};

use powermodel::{Metric, Platform, Support};
use simkit::fault::FaultSpec;

/// The Blue Gene/Q failure profile for fault-injected runs.
///
/// The environmental database "polls on intervals between 60 and 1,800
/// seconds" (§II-A) and rows for a generation can be committed late or not
/// at all — a query then finds no fresh generation (`no_data`) or a row
/// missing from an otherwise complete generation (`drop_record`). EMON
/// itself is a firmware path on dedicated hardware, so transient query
/// errors are rare.
pub fn fault_profile() -> FaultSpec {
    FaultSpec {
        no_data: 0.08,
        drop_record: 0.04,
        transient: 0.01,
        ..FaultSpec::zero()
    }
}

/// The Blue Gene/Q column of Table I.
///
/// The BG/Q exposes per-domain voltage/current (hence power) for the node
/// card including its DRAM and PCIe domains; temperature exists only in the
/// environmental database at coarse (rack/coolant) granularity; it has no
/// fans (water cooled) and no power-limit controls.
pub fn capabilities() -> Vec<(Metric, Support)> {
    use Metric::*;
    use Support::*;
    vec![
        (TotalPower, Yes),
        (Voltage, Yes),
        (Current, Yes),
        (PciExpressPower, Yes),
        (MainMemoryPower, Yes),
        (DieTemp, No),
        (DdrGddrTemp, No),
        (DeviceTemp, Yes),
        (IntakeTemp, NotApplicable),
        (ExhaustTemp, NotApplicable),
        (MemUsed, No),
        (MemFree, No),
        (MemSpeed, No),
        (MemFrequency, No),
        (MemVoltage, Yes),
        (MemClockRate, No),
        (ProcVoltage, Yes),
        (ProcFrequency, No),
        (ProcClockRate, No),
        (FanSpeed, NotApplicable),
        (PowerLimitGetSet, No),
    ]
}

/// The platform this crate models.
pub const PLATFORM: Platform = Platform::BlueGeneQ;

#[cfg(test)]
mod tests {
    use super::*;
    use powermodel::paper_matrix;

    #[test]
    fn capabilities_match_paper_table1_column() {
        let m = paper_matrix();
        assert_eq!(capabilities(), m.column(PLATFORM));
    }
}
