//! The Blue Gene environmental database and its polling daemon.
//!
//! "Blue Gene systems have environmental monitoring capabilities that
//! periodically sample and gather environmental data from various sensors
//! and store this collected information together with the timestamp and
//! location information in an IBM DB2 relational database. … This sensor
//! data is collected at relatively long polling intervals (about 4 minutes
//! on average but can be configured anywhere within a range of 60–1,800
//! seconds), and while a shorter polling interval would be ideal, the
//! resulting volume of data alone would exceed the server's processing
//! capacity." (§II-A)
//!
//! [`EnvDatabase`] is the store; [`PollingDaemon`] walks every BPM (and the
//! coolant loop) each cycle and inserts rows. The ingest-capacity constraint
//! is modelled explicitly: rows beyond `capacity_rows_per_sec × interval`
//! in one cycle are dropped and counted, so configuring a 1-second interval
//! on a large machine visibly loses data instead of silently working.

use crate::bpm::BpmGroup;
use crate::coolant::CoolantLoop;
use crate::machine::BgqMachine;
use crate::topology::MIDPLANES_PER_RACK;
use simkit::{DetRng, EventQueue, SimDuration, SimTime, TimeSeries};

/// Kinds of rows the environmental database stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SensorKind {
    /// BPM AC input power, watts.
    BpmInputWatts,
    /// BPM DC output power, watts.
    BpmOutputWatts,
    /// BPM AC input current, amperes.
    BpmInputAmps,
    /// BPM DC output current, amperes.
    BpmOutputAmps,
    /// Coolant temperature, °C.
    CoolantTempC,
    /// Coolant flow, litres per minute.
    CoolantFlowLpm,
    /// Coolant pressure, bar.
    CoolantPressureBar,
    /// Node-board temperature, °C.
    BoardTempC,
}

/// One row of the environmental database.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvRow {
    /// Poll cycle the row belongs to.
    pub cycle: u64,
    /// Row timestamp (poll time plus per-sensor collection skew — the
    /// paired near-identical timestamps visible on Figure 1's axis).
    pub timestamp: SimTime,
    /// Location code, e.g. `R00-M0-B03` for BPM module 3.
    pub location: String,
    /// What was measured.
    pub kind: SensorKind,
    /// The measured value.
    pub value: f64,
}

/// Daemon/database configuration.
#[derive(Clone, Copy, Debug)]
pub struct EnvDbConfig {
    /// Polling interval; the paper's configurable range is enforced.
    pub poll_interval: SimDuration,
    /// Server ingest capacity, rows per second (averaged over a cycle).
    pub capacity_rows_per_sec: f64,
}

impl EnvDbConfig {
    /// The paper's default ≈4-minute interval.
    pub fn default_4min() -> Self {
        EnvDbConfig {
            poll_interval: SimDuration::from_secs(240),
            capacity_rows_per_sec: 50.0,
        }
    }

    /// Validate the interval against the configurable range (60–1,800 s).
    pub fn validate(&self) -> Result<(), String> {
        let s = self.poll_interval.as_secs_f64();
        if !(60.0..=1_800.0).contains(&s) {
            return Err(format!(
                "polling interval {s:.0}s outside the configurable 60-1800s range"
            ));
        }
        Ok(())
    }
}

/// The environmental database.
#[derive(Clone, Debug, Default)]
pub struct EnvDatabase {
    rows: Vec<EnvRow>,
    /// Rows dropped because a poll cycle exceeded ingest capacity.
    pub dropped_rows: u64,
}

impl EnvDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// All rows, in insertion (time) order.
    pub fn rows(&self) -> &[EnvRow] {
        &self.rows
    }

    /// Rows of one kind whose location starts with `prefix`, within a window.
    pub fn query(
        &self,
        kind: SensorKind,
        prefix: &str,
        from: SimTime,
        to: SimTime,
    ) -> Vec<&EnvRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.kind == kind
                    && r.location.starts_with(prefix)
                    && r.timestamp >= from
                    && r.timestamp <= to
            })
            .collect()
    }

    /// Per-cycle sum of one kind over a location prefix, as a time series
    /// (timestamp = earliest row of the cycle). This is Figure 1's
    /// reduction: total BPM input power per poll.
    pub fn sum_by_cycle(&self, kind: SensorKind, prefix: &str) -> TimeSeries {
        let mut out = TimeSeries::new(format!("{kind:?} sum {prefix}"));
        let mut current: Option<(u64, SimTime, f64)> = None;
        for r in self
            .rows
            .iter()
            .filter(|r| r.kind == kind && r.location.starts_with(prefix))
        {
            match &mut current {
                Some((cycle, _, acc)) if *cycle == r.cycle => *acc += r.value,
                _ => {
                    if let Some((_, t, acc)) = current.take() {
                        out.push(t, acc);
                    }
                    current = Some((r.cycle, r.timestamp, r.value));
                }
            }
        }
        if let Some((_, t, acc)) = current {
            out.push(t, acc);
        }
        out
    }
}

/// The polling daemon.
#[derive(Debug)]
pub struct PollingDaemon {
    config: EnvDbConfig,
}

impl PollingDaemon {
    /// Create a daemon; the interval must be inside the configurable range.
    pub fn new(config: EnvDbConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(PollingDaemon { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &EnvDbConfig {
        &self.config
    }

    /// Rows generated per cycle for `machine` (4 per BPM module plus 3 per
    /// rack coolant loop).
    pub fn rows_per_cycle(&self, machine: &BgqMachine) -> usize {
        let racks = machine.config().topology.racks as usize;
        let bpms = racks * MIDPLANES_PER_RACK * machine.config().bpms_per_midplane;
        // 4 rows per BPM + 3 coolant rows per rack + 1 temperature row per
        // node board (§II-A lists node boards among the sensor locations).
        bpms * 4 + racks * 3 + machine.cards().len()
    }

    /// Drive polling over `[0, horizon]`, filling `db`.
    ///
    /// Each cycle reads every BPM of every midplane; per-module collection
    /// skew (a few milliseconds, deterministic per module) gives each row
    /// its own near-duplicate timestamp, exactly as in Figure 1.
    pub fn run(&self, machine: &BgqMachine, db: &mut EnvDatabase, horizon: SimTime) {
        let racks = machine.config().topology.racks;
        let groups: Vec<BpmGroup> = (0..racks)
            .flat_map(|r| (0..MIDPLANES_PER_RACK as u8).map(move |m| (r, m)))
            .map(|(r, m)| BpmGroup::new(machine, r, m))
            .collect();
        let coolants: Vec<CoolantLoop> = (0..racks).map(|r| CoolantLoop::new(machine, r)).collect();
        let mut skew_rng = DetRng::new(0x05EE_DDB2).child("collection-skew");
        let capacity_per_cycle =
            (self.config.capacity_rows_per_sec * self.config.poll_interval.as_secs_f64()) as u64;

        let mut q: EventQueue<u64> = EventQueue::new();
        q.schedule(SimTime::ZERO + self.config.poll_interval, 0);
        while let Some(ev) = q.pop_until(horizon) {
            let cycle = ev.payload;
            let poll_t = ev.at;
            let mut inserted_this_cycle = 0u64;
            let mut push = |db: &mut EnvDatabase,
                            timestamp: SimTime,
                            location: String,
                            kind: SensorKind,
                            value: f64| {
                if inserted_this_cycle >= capacity_per_cycle {
                    db.dropped_rows += 1;
                } else {
                    db.rows.push(EnvRow {
                        cycle,
                        timestamp,
                        location,
                        kind,
                        value,
                    });
                    inserted_this_cycle += 1;
                }
            };
            for (gi, g) in groups.iter().enumerate() {
                let rack = (gi / MIDPLANES_PER_RACK) as u16;
                let midplane = (gi % MIDPLANES_PER_RACK) as u8;
                for i in 0..g.modules() {
                    // Millisecond-scale skew between sensors in one cycle.
                    let skew = SimDuration::from_micros(skew_rng.below(20_000));
                    let ts = poll_t + skew;
                    let reading = g.read(machine, i, ts);
                    let loc = format!("R{rack:02}-M{midplane}-B{i:02}");
                    push(
                        db,
                        ts,
                        loc.clone(),
                        SensorKind::BpmInputWatts,
                        reading.input_watts,
                    );
                    push(
                        db,
                        ts,
                        loc.clone(),
                        SensorKind::BpmOutputWatts,
                        reading.output_watts,
                    );
                    push(
                        db,
                        ts,
                        loc.clone(),
                        SensorKind::BpmInputAmps,
                        reading.input_amps,
                    );
                    push(db, ts, loc, SensorKind::BpmOutputAmps, reading.output_amps);
                }
            }
            for (r, loop_) in coolants.iter().enumerate() {
                let skew = SimDuration::from_micros(skew_rng.below(20_000));
                let ts = poll_t + skew;
                let reading = loop_.read(machine, ts);
                let loc = format!("R{r:02}-COOLANT");
                push(
                    db,
                    ts,
                    loc.clone(),
                    SensorKind::CoolantTempC,
                    reading.outlet_temp_c,
                );
                push(
                    db,
                    ts,
                    loc.clone(),
                    SensorKind::CoolantFlowLpm,
                    reading.flow_lpm,
                );
                push(
                    db,
                    ts,
                    loc,
                    SensorKind::CoolantPressureBar,
                    reading.pressure_bar,
                );
            }
            // Node-board temperatures: water-cooled boards sit a few
            // degrees above the coolant, scaled by their own dissipation.
            for (i, card) in machine.cards().iter().enumerate() {
                let skew = SimDuration::from_micros(skew_rng.below(20_000));
                let ts = poll_t + skew;
                let rack = card.location.rack as usize;
                let coolant_out = coolants[rack].read(machine, ts).outlet_temp_c;
                let temp = coolant_out + card.total_power(ts) * 0.004;
                push(
                    db,
                    ts,
                    card.location.to_string(),
                    SensorKind::BoardTempC,
                    temp,
                );
                let _ = i;
            }
            let next = poll_t + self.config.poll_interval;
            if next <= horizon {
                q.schedule(next, cycle + 1);
            }
        }
        // Rows within a cycle were appended group-by-group with independent
        // skews; restore global time order for query sanity.
        db.rows.sort_by(|a, b| {
            a.timestamp
                .cmp(&b.timestamp)
                .then_with(|| a.location.cmp(&b.location))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BgqConfig;
    use crate::topology::BOARDS_PER_MIDPLANE;
    use hpc_workloads::Mmps;

    fn setup() -> (BgqMachine, EnvDatabase, PollingDaemon) {
        let machine = BgqMachine::new(BgqConfig::default(), 3);
        let db = EnvDatabase::new();
        let daemon = PollingDaemon::new(EnvDbConfig::default_4min()).unwrap();
        (machine, db, daemon)
    }

    #[test]
    fn interval_range_enforced() {
        let mut cfg = EnvDbConfig::default_4min();
        cfg.poll_interval = SimDuration::from_secs(30);
        assert!(PollingDaemon::new(cfg).is_err());
        cfg.poll_interval = SimDuration::from_secs(1_801);
        assert!(PollingDaemon::new(cfg).is_err());
        cfg.poll_interval = SimDuration::from_secs(60);
        assert!(PollingDaemon::new(cfg).is_ok());
        cfg.poll_interval = SimDuration::from_secs(1_800);
        assert!(PollingDaemon::new(cfg).is_ok());
    }

    #[test]
    fn polls_fill_rows_at_expected_cadence() {
        let (machine, mut db, daemon) = setup();
        daemon.run(&machine, &mut db, SimTime::from_secs(3_600));
        // 3600/240 = 15 cycles; one rack: 32 BPMs * 4 rows + 3 coolant
        // rows + 32 board-temperature rows.
        let cycles: std::collections::BTreeSet<u64> = db.rows().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles.len(), 15);
        assert_eq!(db.rows().len(), 15 * (32 * 4 + 3 + 32));
        assert_eq!(db.dropped_rows, 0);
    }

    #[test]
    fn near_duplicate_timestamps_within_a_cycle() {
        let (machine, mut db, daemon) = setup();
        daemon.run(&machine, &mut db, SimTime::from_secs(300));
        let rows = db.query(
            SensorKind::BpmInputWatts,
            "R00",
            SimTime::ZERO,
            SimTime::from_secs(300),
        );
        assert_eq!(rows.len(), 32);
        let min = rows.iter().map(|r| r.timestamp).min().unwrap();
        let max = rows.iter().map(|r| r.timestamp).max().unwrap();
        assert!(max > min, "all skews identical");
        assert!(max - min < SimDuration::from_millis(25), "skew too large");
    }

    #[test]
    fn sum_by_cycle_tracks_job_shape() {
        let (mut machine, mut db, daemon) = setup();
        // Job on midplane 0 with a 10-minute lead-in and ~25 min of work.
        let profile = Mmps::figure1()
            .profile()
            .with_lead_in(SimDuration::from_secs(600));
        let boards: Vec<usize> = (0..BOARDS_PER_MIDPLANE).collect();
        machine.assign_job(&boards, &profile);
        daemon.run(&machine, &mut db, SimTime::from_secs(3_600));
        let series = db.sum_by_cycle(SensorKind::BpmInputWatts, "R00-M0");
        // Idle cycles before the job are far below mid-job cycles.
        let idle = series
            .window_mean(SimTime::ZERO, SimTime::from_secs(500))
            .unwrap();
        let busy = series
            .window_mean(SimTime::from_secs(900), SimTime::from_secs(1_800))
            .unwrap();
        assert!(busy > idle * 1.5, "idle {idle} vs busy {busy}");
        // And the tail returns to idle after the job ends (~2100 s).
        let tail = series
            .window_mean(SimTime::from_secs(2_400), SimTime::from_secs(3_600))
            .unwrap();
        assert!(
            (tail - idle).abs() < idle * 0.05,
            "tail {tail} vs idle {idle}"
        );
    }

    #[test]
    fn undersized_capacity_drops_rows() {
        let machine = BgqMachine::new(
            BgqConfig {
                topology: crate::topology::Topology { racks: 4 },
                ..BgqConfig::default()
            },
            3,
        );
        let mut db = EnvDatabase::new();
        // 4 racks * 2 * 16 BPMs * 4 rows + 12 coolant + 128 board temps
        // = 652 rows/cycle; at 60 s and 5 rows/s capacity only 300 fit.
        let daemon = PollingDaemon::new(EnvDbConfig {
            poll_interval: SimDuration::from_secs(60),
            capacity_rows_per_sec: 5.0,
        })
        .unwrap();
        assert_eq!(daemon.rows_per_cycle(&machine), 652);
        daemon.run(&machine, &mut db, SimTime::from_secs(120));
        assert!(db.dropped_rows > 0, "expected drops");
        assert_eq!(db.dropped_rows, 2 * (652 - 300));
    }

    #[test]
    fn board_temps_track_load_at_rack_granularity() {
        let (mut machine, mut db, daemon) = setup();
        machine.assign_job(&(0..16).collect::<Vec<_>>(), &Mmps::figure1().profile());
        daemon.run(&machine, &mut db, SimTime::from_secs(1_000));
        let temps = db.query(
            SensorKind::BoardTempC,
            "R00",
            SimTime::from_secs(600),
            SimTime::from_secs(1_000),
        );
        assert_eq!(temps.len(), 32 * 2); // 32 boards x 2 remaining cycles
                                         // Busy boards (midplane 0) run hotter than idle ones (midplane 1).
        let mean = |prefix: &str| {
            let v: Vec<f64> = temps
                .iter()
                .filter(|r| r.location.starts_with(prefix))
                .map(|r| r.value)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean("R00-M0") > mean("R00-M1") + 1.5,
            "busy {} vs idle {}",
            mean("R00-M0"),
            mean("R00-M1")
        );
        // This is the temperature data §IV says exists "only at the rack
        // level" through the environmental path: coarse, slow, but present.
        assert!(temps.iter().all(|r| (15.0..60.0).contains(&r.value)));
    }

    #[test]
    fn rows_are_time_sorted_after_run() {
        let (machine, mut db, daemon) = setup();
        daemon.run(&machine, &mut db, SimTime::from_secs(1_200));
        for w in db.rows().windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}
