//! Rack coolant loop.
//!
//! The BG/Q is water cooled; the environmental database records "coolant
//! flow and pressure" and coolant temperatures per rack (§II-A). The loop
//! model: outlet temperature rises with the rack's dissipated power at a
//! fixed flow; pressure is essentially constant with small measurement
//! noise. This is also the only place the BG/Q exposes any temperature —
//! the rack granularity the paper's conclusion calls out.

use crate::machine::BgqMachine;
use powermodel::{ScalarSensor, SensorSpec};
use simkit::{SimDuration, SimTime};

/// One coolant-loop observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoolantReading {
    /// Inlet water temperature, °C.
    pub inlet_temp_c: f64,
    /// Outlet water temperature, °C.
    pub outlet_temp_c: f64,
    /// Flow, litres per minute.
    pub flow_lpm: f64,
    /// Loop pressure, bar.
    pub pressure_bar: f64,
}

/// The coolant loop of one rack.
#[derive(Clone, Debug)]
pub struct CoolantLoop {
    rack: u16,
    temp_sensor: ScalarSensor,
    flow_sensor: ScalarSensor,
    pressure_sensor: ScalarSensor,
    /// Inlet temperature, °C.
    pub inlet_temp_c: f64,
    /// Nominal flow, litres per minute.
    pub nominal_flow_lpm: f64,
}

/// Specific heat capacity of water, J/(kg·K); 1 L ≈ 1 kg.
const WATER_C_J_PER_KG_K: f64 = 4_186.0;

impl CoolantLoop {
    /// Build the loop for `rack` of `machine`.
    pub fn new(machine: &BgqMachine, rack: u16) -> Self {
        let root = machine.noise().child(&format!("coolant-R{rack:02}"));
        let spec = SensorSpec::ideal(SimDuration::from_secs(5));
        CoolantLoop {
            rack,
            temp_sensor: ScalarSensor::new(spec.with_noise(0.1), root.child("temp")),
            flow_sensor: ScalarSensor::new(spec.with_noise(0.5), root.child("flow")),
            pressure_sensor: ScalarSensor::new(spec.with_noise(0.01), root.child("pressure")),
            inlet_temp_c: 18.0,
            nominal_flow_lpm: 110.0,
        }
    }

    /// Steady-state outlet temperature for a rack power (energy balance:
    /// ΔT = P / (ṁ · c)).
    pub fn outlet_for_power(&self, rack_watts: f64) -> f64 {
        let kg_per_sec = self.nominal_flow_lpm / 60.0;
        self.inlet_temp_c + rack_watts / (kg_per_sec * WATER_C_J_PER_KG_K)
    }

    /// Read the loop at time `t`.
    pub fn read(&self, machine: &BgqMachine, t: SimTime) -> CoolantReading {
        let rack = self.rack;
        let outlet_truth = |at: SimTime| {
            let rack_power =
                machine.midplane_power(rack, 0, at) + machine.midplane_power(rack, 1, at);
            self.outlet_for_power(rack_power)
        };
        CoolantReading {
            inlet_temp_c: self.inlet_temp_c,
            outlet_temp_c: self.temp_sensor.observe(t, outlet_truth),
            flow_lpm: self.flow_sensor.observe(t, |_| self.nominal_flow_lpm),
            pressure_bar: self.pressure_sensor.observe(t, |_| 2.4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BgqConfig;
    use hpc_workloads::Mmps;

    #[test]
    fn outlet_above_inlet_and_rises_with_load() {
        let mut machine = BgqMachine::new(BgqConfig::default(), 5);
        let loop_ = CoolantLoop::new(&machine, 0);
        let idle = loop_.read(&machine, SimTime::from_secs(10));
        assert!(idle.outlet_temp_c > idle.inlet_temp_c);
        machine.assign_job(&(0..32).collect::<Vec<_>>(), &Mmps::figure1().profile());
        let loop_ = CoolantLoop::new(&machine, 0);
        let busy = loop_.read(&machine, SimTime::from_secs(700));
        assert!(
            busy.outlet_temp_c > idle.outlet_temp_c + 1.0,
            "busy {} vs idle {}",
            busy.outlet_temp_c,
            idle.outlet_temp_c
        );
    }

    #[test]
    fn energy_balance_magnitude() {
        let machine = BgqMachine::new(BgqConfig::default(), 5);
        let loop_ = CoolantLoop::new(&machine, 0);
        // 50 kW rack at 110 L/min: ΔT = 50000 / (1.833 * 4186) ≈ 6.5 °C.
        let outlet = loop_.outlet_for_power(50_000.0);
        assert!((outlet - 18.0 - 6.52).abs() < 0.1, "outlet {outlet}");
    }

    #[test]
    fn flow_and_pressure_near_nominal() {
        let machine = BgqMachine::new(BgqConfig::default(), 5);
        let loop_ = CoolantLoop::new(&machine, 0);
        let r = loop_.read(&machine, SimTime::from_secs(60));
        assert!((r.flow_lpm - 110.0).abs() < 3.0);
        assert!((r.pressure_bar - 2.4).abs() < 0.1);
    }
}
