//! Bulk power modules (BPMs).
//!
//! "In each BG/Q rack, bulk power modules (BPMs) convert AC power to 48 V DC
//! power, which is then distributed to the two midplanes. … The Blue Gene
//! environmental database stores power consumption information (in watts and
//! amperes) in both the input and output directions of the BPM." (§II-A)
//!
//! A [`BpmGroup`] models the BPM shelf of one midplane: the midplane's DC
//! load is shared equally across the group, each module converts at the
//! configured efficiency, and each module's input/output watts and amps are
//! read with a small measurement noise.

use crate::machine::BgqMachine;
use powermodel::{ScalarSensor, SensorSpec};
use simkit::{SimDuration, SimTime};

/// DC bus voltage of the BPM output.
pub const BUS_VOLTAGE: f64 = 48.0;

/// One environmental-database power reading of a single BPM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BpmReading {
    /// AC input power, watts.
    pub input_watts: f64,
    /// DC output power, watts.
    pub output_watts: f64,
    /// AC input current, amperes (at nominal 208 V).
    pub input_amps: f64,
    /// DC output current, amperes (at 48 V).
    pub output_amps: f64,
}

/// The BPM shelf of one midplane.
#[derive(Clone, Debug)]
pub struct BpmGroup {
    rack: u16,
    midplane: u8,
    sensors: Vec<ScalarSensor>,
}

/// Nominal AC line voltage feeding the BPMs.
pub const LINE_VOLTAGE: f64 = 208.0;

impl BpmGroup {
    /// Build the shelf for `(rack, midplane)` of `machine`.
    ///
    /// Each module gets an independent noise stream; BPM telemetry refreshes
    /// about once a second (far faster than the environmental database polls
    /// it, which is the point of §II-A's long-interval discussion).
    pub fn new(machine: &BgqMachine, rack: u16, midplane: u8) -> Self {
        let n = machine.config().bpms_per_midplane;
        let spec = SensorSpec::ideal(SimDuration::from_secs(1)).with_noise(4.0);
        let root = machine
            .noise()
            .child(&format!("bpm-R{rack:02}-M{midplane}"));
        let sensors = (0..n)
            .map(|i| ScalarSensor::new(spec, root.child(&format!("module-{i}"))))
            .collect();
        BpmGroup {
            rack,
            midplane,
            sensors,
        }
    }

    /// Number of modules in the shelf.
    pub fn modules(&self) -> usize {
        self.sensors.len()
    }

    /// Read module `i` at time `t`.
    pub fn read(&self, machine: &BgqMachine, i: usize, t: SimTime) -> BpmReading {
        let n = self.sensors.len() as f64;
        let efficiency = machine.config().conversion_efficiency;
        let rack = self.rack;
        let midplane = self.midplane;
        // Ground truth: this module's share of the midplane DC load.
        let truth = |at: SimTime| machine.midplane_power(rack, midplane, at) / n;
        let output_watts = self.sensors[i].observe(t, truth).max(0.0);
        let input_watts = output_watts / efficiency;
        BpmReading {
            input_watts,
            output_watts,
            input_amps: input_watts / LINE_VOLTAGE,
            output_amps: output_watts / BUS_VOLTAGE,
        }
    }

    /// Sum of all module input powers at `t` (what Figure 1 plots per poll).
    pub fn total_input_watts(&self, machine: &BgqMachine, t: SimTime) -> f64 {
        (0..self.modules())
            .map(|i| self.read(machine, i, t).input_watts)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BgqConfig;
    use crate::topology::BOARDS_PER_MIDPLANE;
    use hpc_workloads::Mmps;

    fn machine() -> BgqMachine {
        BgqMachine::new(BgqConfig::default(), 7)
    }

    #[test]
    fn conversion_loss_shows_on_input_side() {
        let m = machine();
        let g = BpmGroup::new(&m, 0, 0);
        let r = g.read(&m, 0, SimTime::from_secs(5));
        assert!(r.input_watts > r.output_watts);
        let eta = r.output_watts / r.input_watts;
        assert!((eta - 0.94).abs() < 1e-9, "efficiency {eta}");
    }

    #[test]
    fn amps_consistent_with_watts() {
        let m = machine();
        let g = BpmGroup::new(&m, 0, 0);
        let r = g.read(&m, 2, SimTime::from_secs(5));
        assert!((r.output_amps * BUS_VOLTAGE - r.output_watts).abs() < 1e-9);
        assert!((r.input_amps * LINE_VOLTAGE - r.input_watts).abs() < 1e-9);
    }

    #[test]
    fn idle_module_near_one_node_card_input() {
        // With the default calibration (16 BPMs per midplane, 16 boards per
        // midplane) one module carries one node card's worth of load.
        let m = machine();
        assert_eq!(m.config().bpms_per_midplane, BOARDS_PER_MIDPLANE);
        let g = BpmGroup::new(&m, 0, 0);
        let r = g.read(&m, 0, SimTime::from_secs(3));
        // Idle card 815 W / 0.94 ≈ 867 W input, ± sensor noise.
        assert!(
            (820.0..920.0).contains(&r.input_watts),
            "idle module input {}",
            r.input_watts
        );
    }

    #[test]
    fn module_power_rises_with_a_job_and_lands_in_figure1_band() {
        let mut m = machine();
        // The job occupies the whole midplane, as a real MMPS run would.
        let boards: Vec<usize> = (0..BOARDS_PER_MIDPLANE).collect();
        m.assign_job(&boards, &Mmps::figure1().profile());
        let g = BpmGroup::new(&m, 0, 0);
        let idle_before = 850.0; // roughly, from the test above
        let busy = g.read(&m, 0, SimTime::from_secs(700)).input_watts;
        assert!(busy > idle_before + 500.0, "busy input {busy}");
        assert!(
            (1_500.0..1_900.0).contains(&busy),
            "busy module input {busy} outside Figure 1 band"
        );
    }

    #[test]
    fn modules_have_independent_noise() {
        let m = machine();
        let g = BpmGroup::new(&m, 0, 0);
        let t = SimTime::from_secs(9);
        let a = g.read(&m, 0, t).output_watts;
        let b = g.read(&m, 1, t).output_watts;
        assert_ne!(a, b, "two modules returned identical noisy readings");
    }

    #[test]
    fn rereads_are_stable() {
        let m = machine();
        let g = BpmGroup::new(&m, 0, 0);
        let t = SimTime::from_secs(9);
        assert_eq!(g.read(&m, 0, t), g.read(&m, 0, t));
    }
}
