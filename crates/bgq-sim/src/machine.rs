//! The machine model: node cards bound to workloads.
//!
//! A [`BgqMachine`] is the ground-truth power oracle: every node card holds
//! a seven-domain [`DevicePower`] built from the workload profile assigned
//! to it (idle cards run the zero profile). Both observation paths — the
//! environmental database's BPM polling and the EMON API — read through
//! this oracle.

use crate::domains::Domain;
use crate::topology::{Location, Topology};
use hpc_workloads::WorkloadProfile;
use powermodel::{DemandTrace, DevicePower, DeviceSpec};
use simkit::{NoiseStream, SimTime};

/// Static machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BgqConfig {
    /// Machine shape.
    pub topology: Topology,
    /// AC→DC conversion efficiency of the bulk power modules.
    pub conversion_efficiency: f64,
    /// BPMs serving each midplane.
    ///
    /// Physically a BG/Q midplane is fed by an N+1 redundant BPM shelf; the
    /// default here (16) is calibrated so a single BPM's input power lands
    /// in the 800–1,800 W band printed on Figure 1's axis. The figure's
    /// *shape* is invariant to this choice.
    pub bpms_per_midplane: usize,
}

impl Default for BgqConfig {
    fn default() -> Self {
        BgqConfig {
            topology: Topology { racks: 1 },
            conversion_efficiency: 0.94,
            bpms_per_midplane: 16,
        }
    }
}

/// One node board (node card) and its power oracle.
#[derive(Clone, Debug)]
pub struct NodeCard {
    /// Physical location.
    pub location: Location,
    /// The seven-domain power model currently bound to this card.
    power: DevicePower,
}

impl NodeCard {
    /// Power of one domain at `t`, watts.
    pub fn domain_power(&self, domain: Domain, t: SimTime) -> f64 {
        let idx = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("domain in ALL");
        self.power.component_power(idx, t)
    }

    /// Total card power at `t`, watts (DC, output side of the BPMs).
    pub fn total_power(&self, t: SimTime) -> f64 {
        self.power.total_power(t)
    }

    /// Total card energy over `[from, to]`, joules.
    pub fn total_energy(&self, from: SimTime, to: SimTime) -> f64 {
        self.power.total_energy(from, to)
    }
}

/// The whole machine.
#[derive(Clone, Debug)]
pub struct BgqMachine {
    config: BgqConfig,
    cards: Vec<NodeCard>,
    noise: NoiseStream,
}

impl BgqMachine {
    /// Build an idle machine.
    pub fn new(config: BgqConfig, seed: u64) -> Self {
        let cards = config
            .topology
            .board_locations()
            .map(|location| NodeCard {
                location,
                power: build_card_power(location, None),
            })
            .collect();
        BgqMachine {
            config,
            cards,
            noise: NoiseStream::new(seed),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &BgqConfig {
        &self.config
    }

    /// Machine-wide noise root (children derive per-sensor streams).
    pub fn noise(&self) -> &NoiseStream {
        &self.noise
    }

    /// All node cards.
    pub fn cards(&self) -> &[NodeCard] {
        &self.cards
    }

    /// A node card by board index.
    pub fn card(&self, board_index: usize) -> &NodeCard {
        &self.cards[board_index]
    }

    /// Bind a workload profile to a set of node cards (the job's partition).
    /// Other cards stay on their current binding.
    pub fn assign_job(&mut self, board_indices: &[usize], profile: &WorkloadProfile) {
        for &i in board_indices {
            let location = self.cards[i].location;
            self.cards[i] = NodeCard {
                location,
                power: build_card_power(location, Some(profile)),
            };
        }
    }

    /// Release cards back to idle.
    pub fn release(&mut self, board_indices: &[usize]) {
        for &i in board_indices {
            let location = self.cards[i].location;
            self.cards[i] = NodeCard {
                location,
                power: build_card_power(location, None),
            };
        }
    }

    /// DC power of one midplane at `t` (sum of its 16 node cards), watts.
    pub fn midplane_power(&self, rack: u16, midplane: u8, t: SimTime) -> f64 {
        self.cards
            .iter()
            .filter(|c| c.location.rack == rack && c.location.midplane == midplane)
            .map(|c| c.total_power(t))
            .sum()
    }

    /// Total DC power of the machine at `t`, watts.
    pub fn machine_power(&self, t: SimTime) -> f64 {
        self.cards.iter().map(|c| c.total_power(t)).sum()
    }
}

fn build_card_power(location: Location, profile: Option<&WorkloadProfile>) -> DevicePower {
    let spec = DeviceSpec {
        name: format!("node-card {location}"),
        components: Domain::ALL.iter().map(|d| d.component_spec()).collect(),
    };
    let demands: Vec<DemandTrace> = Domain::ALL
        .iter()
        .map(|d| match profile {
            Some(p) => d.demand_from(p),
            None => DemandTrace::zero(),
        })
        .collect();
    DevicePower::new(spec, &demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::node_card_idle_watts;
    use hpc_workloads::Mmps;

    #[test]
    fn idle_machine_power_is_cards_times_idle() {
        let m = BgqMachine::new(BgqConfig::default(), 1);
        let t = SimTime::from_secs(10);
        let expected = 32.0 * node_card_idle_watts(); // 1 rack = 32 boards
        assert!((m.machine_power(t) - expected).abs() < 1e-6);
    }

    #[test]
    fn assigning_a_job_raises_only_its_cards() {
        let mut m = BgqMachine::new(BgqConfig::default(), 1);
        let profile = Mmps::figure1().profile();
        m.assign_job(&[0], &profile);
        let t = SimTime::from_secs(700);
        let busy = m.card(0).total_power(t);
        let idle = m.card(1).total_power(t);
        assert!(busy > idle + 500.0, "busy {busy} vs idle {idle}");
        assert!((idle - node_card_idle_watts()).abs() < 1e-6);
    }

    #[test]
    fn release_returns_card_to_idle() {
        let mut m = BgqMachine::new(BgqConfig::default(), 1);
        let profile = Mmps::figure1().profile();
        m.assign_job(&[3], &profile);
        m.release(&[3]);
        let t = SimTime::from_secs(700);
        assert!((m.card(3).total_power(t) - node_card_idle_watts()).abs() < 1e-6);
    }

    #[test]
    fn midplane_power_sums_sixteen_cards() {
        let m = BgqMachine::new(BgqConfig::default(), 1);
        let t = SimTime::ZERO;
        let mp = m.midplane_power(0, 0, t);
        assert!((mp - 16.0 * node_card_idle_watts()).abs() < 1e-6);
    }

    #[test]
    fn domain_power_sums_to_total() {
        let mut m = BgqMachine::new(BgqConfig::default(), 2);
        m.assign_job(&[0], &Mmps::figure1().profile());
        let t = SimTime::from_secs(100);
        let by_domain: f64 = Domain::ALL
            .iter()
            .map(|&d| m.card(0).domain_power(d, t))
            .sum();
        assert!((by_domain - m.card(0).total_power(t)).abs() < 1e-9);
    }
}
