//! The EMON environmental-monitoring API.
//!
//! "IBM provides interfaces in the form of an environmental monitoring API
//! called EMON that allows one to access power consumption data from code
//! running on compute nodes, with a relatively short response time. The
//! power information obtained using EMON is total power consumption from
//! the **oldest generation** of power data. Furthermore, the underlying
//! power measurement infrastructure **does not measure all domains at the
//! exact same time**. … One limitation of the EMON API that we cannot do
//! anything about is that it can only collect data at the **node card level
//! (every 32 nodes)**." (§II-A)
//!
//! All three quirks are modelled: readings come from the generation before
//! the current one, each domain's sample is skewed by a per-domain offset
//! within the generation, and the API is constructed per node card, not per
//! node. Each query costs [`EMON_QUERY_COST`] ≈ 1.10 ms of virtual time —
//! the number behind MonEQ's 0.19 % overhead at the 560 ms interval.

use crate::domains::Domain;
use crate::machine::BgqMachine;
use simkit::{SimDuration, SimTime};

/// Cost charged to the calling application per EMON query (§II-A: "each
/// collection takes about 1.10 ms").
pub const EMON_QUERY_COST: SimDuration = SimDuration::from_micros(1_100);

/// Generation cadence of the underlying measurement infrastructure; MonEQ's
/// finest BG/Q polling interval (Figure 2: "captured at 560ms").
pub const EMON_GENERATION_PERIOD: SimDuration = SimDuration::from_millis(560);

/// One domain's voltage/current reading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DomainReading {
    /// Which domain.
    pub domain: Domain,
    /// Rail voltage, volts.
    pub volts: f64,
    /// Rail current, amperes.
    pub amps: f64,
}

impl DomainReading {
    /// Domain power, watts.
    pub fn watts(&self) -> f64 {
        self.volts * self.amps
    }
}

/// An EMON session bound to one node card.
#[derive(Clone, Debug)]
pub struct EmonApi {
    board_index: usize,
}

impl EmonApi {
    /// Open the API for the node card containing the calling rank.
    pub fn open(board_index: usize) -> Self {
        EmonApi { board_index }
    }

    /// The node card this session reads (the 32-node granularity limit).
    pub fn board_index(&self) -> usize {
        self.board_index
    }

    /// The generation timestamp an EMON query at `t` reads from: the
    /// *previous* completed generation ("the oldest generation of power
    /// data").
    pub fn generation_read_at(&self, t: SimTime) -> SimTime {
        let current = t.grid_floor(SimTime::ZERO, EMON_GENERATION_PERIOD);
        if current == SimTime::ZERO {
            SimTime::ZERO
        } else {
            current - EMON_GENERATION_PERIOD
        }
    }

    /// Per-domain sampling skew inside a generation: the infrastructure
    /// walks the domains sequentially, ~70 ms apart.
    pub fn domain_skew(&self, domain: Domain) -> SimDuration {
        let idx = Domain::ALL
            .iter()
            .position(|&d| d == domain)
            .expect("domain in ALL") as u64;
        SimDuration::from_millis(70) * idx
    }

    /// Read all seven domains at query time `t`.
    ///
    /// Each domain's value is the machine truth at `generation + skew(d)`
    /// plus a small per-generation measurement error (~0.5 % of reading); a
    /// workload phase change inside a generation therefore lands in some
    /// domains and not others — the paper's "inconsistent cases, such as …
    /// code \[that\] begins to stress both the CPU and memory at the same
    /// time".
    pub fn read_domains(&self, machine: &BgqMachine, t: SimTime) -> [DomainReading; 7] {
        let generation = self.generation_read_at(t);
        let gen_index = generation.grid_index(SimTime::ZERO, EMON_GENERATION_PERIOD);
        let card = machine.card(self.board_index);
        let noise = machine.noise().child(&format!("emon-{}", self.board_index));
        Domain::ALL.map(|domain| {
            let sample_t = generation + self.domain_skew(domain);
            let truth = card.domain_power(domain, sample_t);
            let err = noise.child(domain.label()).normal(gen_index);
            let watts = (truth * (1.0 + 0.005 * err)).max(0.0);
            let volts = domain.rail_voltage();
            DomainReading {
                domain,
                volts,
                amps: watts / volts,
            }
        })
    }

    /// The effective sample instant of `domain` for a query at `t`:
    /// the served generation plus the domain's skew. This is the instant
    /// whose machine truth the reading reflects (before noise) — the
    /// "cadence" leg of the accuracy decomposition.
    pub fn sample_instant(&self, domain: Domain, t: SimTime) -> SimTime {
        self.generation_read_at(t) + self.domain_skew(domain)
    }

    /// Read all seven domains at `t` with the per-generation measurement
    /// noise left out: the machine truth at each domain's skewed sample
    /// instant, exactly what [`EmonApi::read_domains`] perturbs. The
    /// accuracy harness attributes `read_domains − read_domains_ideal` to
    /// measurement noise and `read_domains_ideal − truth(t)` to the
    /// generation/skew staleness.
    pub fn read_domains_ideal(&self, machine: &BgqMachine, t: SimTime) -> [DomainReading; 7] {
        let card = machine.card(self.board_index);
        Domain::ALL.map(|domain| {
            let truth = card.domain_power(domain, self.sample_instant(domain, t));
            let volts = domain.rail_voltage();
            DomainReading {
                domain,
                volts,
                amps: truth / volts,
            }
        })
    }

    /// Total node-card power at query time `t`, watts (the original EMON
    /// call's result).
    pub fn total_power(&self, machine: &BgqMachine, t: SimTime) -> f64 {
        self.read_domains(machine, t)
            .iter()
            .map(DomainReading::watts)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::node_card_idle_watts;
    use crate::machine::BgqConfig;
    use hpc_workloads::{Channel, WorkloadProfile};
    use powermodel::PhaseBuilder;

    fn machine() -> BgqMachine {
        BgqMachine::new(BgqConfig::default(), 11)
    }

    #[test]
    fn reads_previous_generation() {
        let api = EmonApi::open(0);
        // At t = 1.5 s the current generation started at 1.12 s; EMON serves
        // the one before, 0.56 s.
        assert_eq!(
            api.generation_read_at(SimTime::from_millis(1_500)),
            SimTime::from_millis(560)
        );
        assert_eq!(
            api.generation_read_at(SimTime::from_millis(100)),
            SimTime::ZERO
        );
    }

    #[test]
    fn idle_card_reads_idle_power_within_measurement_error() {
        let m = machine();
        let api = EmonApi::open(0);
        let p = api.total_power(&m, SimTime::from_secs(10));
        // ~0.5% per-domain error, 7 domains: total within ~2% of idle.
        let idle = node_card_idle_watts();
        assert!((p - idle).abs() < idle * 0.02, "p {p} vs idle {idle}");
    }

    #[test]
    fn readings_carry_measurement_noise_between_generations() {
        let m = machine();
        let api = EmonApi::open(0);
        let a = api.total_power(&m, SimTime::from_secs(10));
        let b = api.total_power(&m, SimTime::from_secs(20));
        assert_ne!(
            a, b,
            "EMON readings implausibly identical across generations"
        );
        // But re-reads within one 560 ms generation are stable
        // (10.00 s and 10.05 s share generation slot 17).
        let c = api.total_power(&m, SimTime::from_millis(10_050));
        assert_eq!(a, c);
    }

    #[test]
    fn domain_readings_decompose_total() {
        let m = machine();
        let api = EmonApi::open(0);
        let readings = api.read_domains(&m, SimTime::from_secs(10));
        assert_eq!(readings.len(), 7);
        let total: f64 = readings.iter().map(DomainReading::watts).sum();
        assert!((total - api.total_power(&m, SimTime::from_secs(10))).abs() < 1e-9);
        for r in &readings {
            assert!(r.volts > 0.0 && r.amps >= 0.0);
        }
    }

    #[test]
    fn staleness_hides_a_just_started_phase() {
        // A phase that begins at 10.0 s is invisible to a query at 10.6 s
        // (whose data generation is 9.52 s) but visible by 11.8 s.
        let mut m = machine();
        let mut p = WorkloadProfile::new("step", SimDuration::from_secs(100));
        p.set_demand(
            Channel::Cpu,
            PhaseBuilder::starting_at(SimTime::from_secs(10))
                .phase(SimDuration::from_secs(90), 1.0)
                .build_open(),
        );
        m.assign_job(&[0], &p);
        let api = EmonApi::open(0);
        let before = api.total_power(&m, SimTime::from_millis(10_600));
        let after = api.total_power(&m, SimTime::from_millis(11_800));
        assert!(
            after > before + 100.0,
            "step not visible: before {before}, after {after}"
        );
        assert!(
            (before - node_card_idle_watts()).abs() < 30.0,
            "before {before}"
        );
    }

    #[test]
    fn domain_skew_causes_inconsistent_snapshots() {
        // CPU and memory step together at t=10 s; a generation that lands
        // inside the step sees ChipCore (skew 0) still idle but a later-
        // skewed domain already active, or vice versa.
        let mut m = machine();
        let mut p = WorkloadProfile::new("step", SimDuration::from_secs(100));
        let step = PhaseBuilder::starting_at(SimTime::from_millis(10_200))
            .phase(SimDuration::from_secs(90), 1.0)
            .build_open();
        p.set_demand(Channel::Cpu, step.clone());
        p.set_demand(Channel::Memory, step);
        m.assign_job(&[0], &p);
        let api = EmonApi::open(0);
        // Query whose generation is 10.08 s: ChipCore sampled at 10.08 (idle),
        // SRAM (skew 6*70ms=0.42s) sampled at 10.50 s (active).
        let t = SimTime::from_millis(11_000);
        let readings = api.read_domains(&m, t);
        let chip = readings[0].watts();
        let sram = readings[6].watts();
        let chip_spec = Domain::ChipCore.component_spec();
        let sram_spec = Domain::Sram.component_spec();
        assert!(
            chip < chip_spec.idle_w + 0.5 * chip_spec.dynamic_w,
            "chip already fully active: {chip}"
        );
        assert!(
            sram > sram_spec.idle_w + 0.5 * sram_spec.dynamic_w,
            "sram still idle: {sram}"
        );
    }

    #[test]
    fn ideal_read_is_the_noise_free_truth_at_the_sample_instant() {
        let m = machine();
        let api = EmonApi::open(0);
        let t = SimTime::from_secs(10);
        let ideal = api.read_domains_ideal(&m, t);
        let noisy = api.read_domains(&m, t);
        for (i, r) in ideal.iter().enumerate() {
            let truth = m
                .card(0)
                .domain_power(r.domain, api.sample_instant(r.domain, t));
            assert!((r.watts() - truth).abs() < 1e-9, "{:?}", r.domain);
            // The real read only differs by the ~0.5% noise multiplier.
            let rel = (noisy[i].watts() - r.watts()).abs() / r.watts().max(1e-9);
            assert!(rel < 0.05, "{:?}: rel {rel}", r.domain);
        }
    }

    #[test]
    fn query_cost_constant_matches_paper() {
        assert!((EMON_QUERY_COST.as_millis_f64() - 1.10).abs() < 1e-9);
        // 0.19% overhead at the 560 ms interval (§II-A).
        let overhead = EMON_QUERY_COST.as_secs_f64() / EMON_GENERATION_PERIOD.as_secs_f64();
        assert!((overhead - 0.00196).abs() < 2e-4, "overhead {overhead}");
    }
}
