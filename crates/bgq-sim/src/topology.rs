//! Blue Gene/Q physical topology and location codes.
//!
//! "A rack of a BG/Q system consists of two midplanes, eight link cards, and
//! two service cards. A midplane contains 16 node boards. Each node board
//! holds 32 compute cards, for a total of 1,024 nodes per rack. … BG/Q thus
//! has 16,384 cores per rack." (§II-A)
//!
//! Locations follow the Blue Gene convention `Rxx-Mx-Nxx[-Jxx]`: rack,
//! midplane (0–1), node board (00–15), compute card (00–31).

use std::fmt;
use std::str::FromStr;

/// Compute cards per node board.
pub const CARDS_PER_BOARD: usize = 32;
/// Node boards per midplane.
pub const BOARDS_PER_MIDPLANE: usize = 16;
/// Midplanes per rack.
pub const MIDPLANES_PER_RACK: usize = 2;
/// Compute nodes per rack (1,024).
pub const NODES_PER_RACK: usize = CARDS_PER_BOARD * BOARDS_PER_MIDPLANE * MIDPLANES_PER_RACK;
/// Application cores per node (one more runs system software, one is spare).
pub const APP_CORES_PER_NODE: usize = 16;
/// Cores per rack as the paper counts them (16,384).
pub const CORES_PER_RACK: usize = NODES_PER_RACK * APP_CORES_PER_NODE;

/// A node-board location `Rxx-Mx-Nxx` (the granularity of EMON data), or a
/// compute-card location when `card` is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// Rack index.
    pub rack: u16,
    /// Midplane within the rack (0 or 1).
    pub midplane: u8,
    /// Node board within the midplane (0–15).
    pub board: u8,
    /// Compute card within the board (0–31), if addressing a single node.
    pub card: Option<u8>,
}

impl Location {
    /// A node-board location.
    pub fn board(rack: u16, midplane: u8, board: u8) -> Self {
        assert!(
            (midplane as usize) < MIDPLANES_PER_RACK,
            "midplane out of range"
        );
        assert!((board as usize) < BOARDS_PER_MIDPLANE, "board out of range");
        Location {
            rack,
            midplane,
            board,
            card: None,
        }
    }

    /// A compute-card location.
    pub fn compute_card(rack: u16, midplane: u8, board: u8, card: u8) -> Self {
        assert!((card as usize) < CARDS_PER_BOARD, "card out of range");
        Location {
            card: Some(card),
            ..Location::board(rack, midplane, board)
        }
    }

    /// The node board containing this location.
    pub fn board_of(&self) -> Location {
        Location {
            card: None,
            ..*self
        }
    }

    /// Flat index of the node board within the whole machine.
    pub fn board_index(&self) -> usize {
        (self.rack as usize * MIDPLANES_PER_RACK + self.midplane as usize) * BOARDS_PER_MIDPLANE
            + self.board as usize
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{:02}-M{}-N{:02}", self.rack, self.midplane, self.board)?;
        if let Some(c) = self.card {
            write!(f, "-J{c:02}")?;
        }
        Ok(())
    }
}

/// Errors from parsing a location code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocationParseError(String);

impl fmt::Display for LocationParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid location code: {}", self.0)
    }
}

impl std::error::Error for LocationParseError {}

impl FromStr for Location {
    type Err = LocationParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || LocationParseError(s.to_owned());
        let mut parts = s.split('-');
        let rack = parts
            .next()
            .and_then(|p| p.strip_prefix('R'))
            .and_then(|p| p.parse::<u16>().ok())
            .ok_or_else(err)?;
        let midplane = parts
            .next()
            .and_then(|p| p.strip_prefix('M'))
            .and_then(|p| p.parse::<u8>().ok())
            .filter(|&m| (m as usize) < MIDPLANES_PER_RACK)
            .ok_or_else(err)?;
        let board = parts
            .next()
            .and_then(|p| p.strip_prefix('N'))
            .and_then(|p| p.parse::<u8>().ok())
            .filter(|&b| (b as usize) < BOARDS_PER_MIDPLANE)
            .ok_or_else(err)?;
        let card = match parts.next() {
            None => None,
            Some(p) => Some(
                p.strip_prefix('J')
                    .and_then(|p| p.parse::<u8>().ok())
                    .filter(|&c| (c as usize) < CARDS_PER_BOARD)
                    .ok_or_else(err)?,
            ),
        };
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Location {
            rack,
            midplane,
            board,
            card,
        })
    }
}

/// Machine-shape helper: iteration over a machine of `racks` racks.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// Number of racks (Mira: 48).
    pub racks: u16,
}

impl Topology {
    /// Mira's shape.
    pub fn mira() -> Self {
        Topology { racks: 48 }
    }

    /// Total compute nodes.
    pub fn nodes(&self) -> usize {
        self.racks as usize * NODES_PER_RACK
    }

    /// Total node boards (the EMON granularity).
    pub fn boards(&self) -> usize {
        self.racks as usize * MIDPLANES_PER_RACK * BOARDS_PER_MIDPLANE
    }

    /// Iterate every node-board location.
    pub fn board_locations(&self) -> impl Iterator<Item = Location> + '_ {
        let racks = self.racks;
        (0..racks).flat_map(|r| {
            (0..MIDPLANES_PER_RACK as u8).flat_map(move |m| {
                (0..BOARDS_PER_MIDPLANE as u8).map(move |n| Location::board(r, m, n))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        assert_eq!(NODES_PER_RACK, 1_024);
        assert_eq!(CORES_PER_RACK, 16_384);
        assert_eq!(Topology::mira().nodes(), 49_152); // the full-Mira scale of §III
    }

    #[test]
    fn location_display_roundtrip() {
        let l = Location::compute_card(0, 1, 4, 12);
        assert_eq!(l.to_string(), "R00-M1-N04-J12");
        assert_eq!("R00-M1-N04-J12".parse::<Location>().unwrap(), l);
        let b = Location::board(7, 0, 15);
        assert_eq!(b.to_string(), "R07-M0-N15");
        assert_eq!("R07-M0-N15".parse::<Location>().unwrap(), b);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "R00",
            "R00-M2-N00",     // midplane out of range
            "R00-M0-N16",     // board out of range
            "R00-M0-N00-J32", // card out of range
            "R00-M0-N00-J01-X",
            "X00-M0-N00",
        ] {
            assert!(bad.parse::<Location>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn board_of_strips_card() {
        let l = Location::compute_card(1, 0, 3, 9);
        assert_eq!(l.board_of(), Location::board(1, 0, 3));
    }

    #[test]
    fn board_index_is_dense_and_unique() {
        let topo = Topology { racks: 2 };
        let idxs: Vec<usize> = topo.board_locations().map(|l| l.board_index()).collect();
        assert_eq!(idxs.len(), topo.boards());
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..topo.boards()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "card out of range")]
    fn card_range_enforced() {
        Location::compute_card(0, 0, 0, 32);
    }
}
