//! Property tests for the Blue Gene/Q model.

use bgq_sim::envdb::SensorKind;
use bgq_sim::{BgqConfig, BgqMachine, EnvDatabase, EnvDbConfig, Location, PollingDaemon};
use hpc_workloads::{Channel, WorkloadProfile};
use powermodel::PhaseBuilder;
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};

proptest! {
    #[test]
    fn location_display_parse_roundtrip(
        rack in 0u16..100,
        midplane in 0u8..2,
        board in 0u8..16,
        card in prop::option::of(0u8..32),
    ) {
        let loc = match card {
            Some(c) => Location::compute_card(rack, midplane, board, c),
            None => Location::board(rack, midplane, board),
        };
        let text = loc.to_string();
        prop_assert_eq!(text.parse::<Location>().unwrap(), loc);
    }

    #[test]
    fn arbitrary_strings_never_panic_the_parser(s in ".{0,30}") {
        let _ = s.parse::<Location>();
    }

    #[test]
    fn board_indices_unique_within_any_machine(racks in 1u16..6) {
        let topo = bgq_sim::Topology { racks };
        let mut seen = std::collections::HashSet::new();
        for loc in topo.board_locations() {
            prop_assert!(seen.insert(loc.board_index()), "duplicate index for {loc}");
        }
        prop_assert_eq!(seen.len(), topo.boards());
    }

    #[test]
    fn emon_total_bounded_by_card_envelope(
        cpu in 0.0f64..=1.0,
        net in 0.0f64..=1.0,
        mem in 0.0f64..=1.0,
        query_secs in 1u64..500,
    ) {
        let mut machine = BgqMachine::new(BgqConfig::default(), 5);
        let mut p = WorkloadProfile::new("w", SimDuration::from_secs(600));
        let d = SimDuration::from_secs(600);
        p.set_demand(Channel::Cpu, PhaseBuilder::new().phase(d, cpu).build());
        p.set_demand(Channel::Network, PhaseBuilder::new().phase(d, net).build());
        p.set_demand(Channel::Memory, PhaseBuilder::new().phase(d, mem).build());
        machine.assign_job(&[0], &p);
        let api = bgq_sim::EmonApi::open(0);
        let total = api.total_power(&machine, SimTime::from_secs(query_secs));
        // Idle and peak bounds with headroom for the 0.5% measurement error.
        let idle = bgq_sim::domains::node_card_idle_watts();
        let peak: f64 = bgq_sim::Domain::ALL
            .iter()
            .map(|dm| {
                let s = dm.component_spec();
                s.idle_w + s.dynamic_w
            })
            .sum();
        prop_assert!(total >= idle * 0.95, "total {} below idle", total);
        prop_assert!(total <= peak * 1.05, "total {} above peak", total);
    }

    #[test]
    fn envdb_rows_sorted_and_cycles_complete(
        interval_secs in 60u64..600,
        horizon_secs in 600u64..1_800,
    ) {
        let machine = BgqMachine::new(BgqConfig::default(), 5);
        let daemon = PollingDaemon::new(EnvDbConfig {
            poll_interval: SimDuration::from_secs(interval_secs),
            capacity_rows_per_sec: 1e9,
        }).unwrap();
        let mut db = EnvDatabase::new();
        daemon.run(&machine, &mut db, SimTime::from_secs(horizon_secs));
        // Sorted by timestamp.
        for w in db.rows().windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
        // Every present cycle has the full per-cycle row count.
        let expected = daemon.rows_per_cycle(&machine);
        let mut counts = std::collections::BTreeMap::new();
        for r in db.rows() {
            *counts.entry(r.cycle).or_insert(0usize) += 1;
        }
        for (cycle, n) in counts {
            prop_assert_eq!(n, expected, "cycle {} incomplete", cycle);
        }
        prop_assert_eq!(db.dropped_rows, 0);
    }

    #[test]
    fn sum_by_cycle_equals_manual_sum(seed in 0u64..50) {
        let machine = BgqMachine::new(BgqConfig::default(), seed);
        let daemon = PollingDaemon::new(EnvDbConfig::default_4min()).unwrap();
        let mut db = EnvDatabase::new();
        daemon.run(&machine, &mut db, SimTime::from_secs(1_000));
        let series = db.sum_by_cycle(SensorKind::BpmOutputWatts, "R00-M0");
        // Manual reduction.
        let mut by_cycle = std::collections::BTreeMap::new();
        for r in db.rows() {
            if r.kind == SensorKind::BpmOutputWatts && r.location.starts_with("R00-M0") {
                *by_cycle.entry(r.cycle).or_insert(0.0) += r.value;
            }
        }
        prop_assert_eq!(series.len(), by_cycle.len());
        for (s, (_, v)) in series.samples().iter().zip(by_cycle) {
            prop_assert!((s.value - v).abs() < 1e-9);
        }
    }
}
