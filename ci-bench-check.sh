#!/usr/bin/env bash
# Bench regression guard: re-run the sweep binaries in smoke (--quick) mode
# and compare their headline ratios against the committed BENCH_*.json
# files. A ratio regressing by more than 20% fails the build.
#
#   ./ci-bench-check.sh
#
# Only *ratios* are guarded, never absolute wall-clock: smoke mode runs
# smaller scales than the committed full sweeps and CI machines differ, but
# the ratios are scale-free claims the benches exist to defend:
#
#   BENCH_cache.json      collection_factor — charged-cost reduction from
#                         batched collection (exactly the domain size, 32)
#   BENCH_cluster.json    speedup — parallel vs serial drive of the same
#                         deterministic workload
#   BENCH_telemetry.json  on/off wall ratio — cost of enabling telemetry
#   BENCH_accuracy.json   cadence-error growth factors (NVML/EMON/OCC
#                         error rises with transient frequency; EMON worst
#                         on sub-560 ms bursts) plus three hard
#                         invariants: every decomposition closes exactly,
#                         RAPL's constant-workload error stays within one
#                         tick, and the OCC noise leg is a structural zero
#   BENCH_query.json      serving invariants only — rollup tiers equal the
#                         raw fold bit for bit (exact) and threaded query
#                         clients match the serial referee (coherent); the
#                         qps columns are absolute wall-clock and are
#                         recorded for trend reading, never gated
#   BENCH_transport.json  wire invariants only — remote over the ideal
#                         link byte-equals local (identical), latency-only
#                         links land as exactly polls x 2*latency (exact),
#                         and faulty-run ledgers reconcile (reconciled);
#                         round-trip percentiles are recorded, never gated
#   BENCH_scenarios.json  closed-loop invariants only — every replication
#                         row carries invariant (all machine checks pass)
#                         and the run carries deterministic (replication-0
#                         artifacts byte-identical on rerun); wall_ms is
#                         recorded, never gated
#
# The sweep binaries additionally self-check the deterministic invariants
# (byte-identical outputs, serial == parallel) on every run, so a pass here
# also re-proves those at smoke scale.
set -euo pipefail
cd "$(dirname "$0")"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# All numeric values for a JSON key, one per line (the BENCH files are
# line-per-row on purpose, so no JSON parser is needed).
vals() { # file key
    grep -o "\"$2\": *-\{0,1\}[0-9.]*" "$1" | sed 's/.*: *//'
}
minof() { sort -g | head -1; }
maxof() { sort -g | tail -1; }

fail=0

# check_ge LABEL FRESH COMMITTED: higher is better, fresh must hold at
# least 80% of the committed ratio.
check_ge() {
    awk -v l="$1" -v f="$2" -v c="$3" 'BEGIN {
        if (f + 0 < 0.8 * c) {
            printf "FAIL %-28s %.2f vs committed %.2f (>20%% regression)\n", l, f, c
            exit 1
        }
        printf "ok   %-28s %.2f vs committed %.2f\n", l, f, c
    }' || fail=1
}

# check_le LABEL FRESH COMMITTED: lower is better, fresh may exceed the
# committed ratio by at most 20%.
check_le() {
    awk -v l="$1" -v f="$2" -v c="$3" 'BEGIN {
        if (f + 0 > 1.2 * c) {
            printf "FAIL %-28s %.2f vs committed %.2f (>20%% regression)\n", l, f, c
            exit 1
        }
        printf "ok   %-28s %.2f vs committed %.2f\n", l, f, c
    }' || fail=1
}

echo "==> rebuilding sweep binaries (release)"
cargo build --release -q -p envmon-bench

echo "==> cache_sweep --quick"
./target/release/cache_sweep --quick --out "$tmp/cache.json"
check_ge "cache collection_factor" \
    "$(vals "$tmp/cache.json" collection_factor | minof)" \
    "$(vals BENCH_cache.json collection_factor | minof)"

echo "==> cluster_sweep --quick"
./target/release/cluster_sweep --quick --out "$tmp/cluster.json"
# Speedup ratios only mean something when both the fresh and the committed
# sweeps actually ran a parallel pool: a leg with pool_width 1 measured
# serial-vs-serial, so its "speedup" is pure scheduler noise. (The old
# committed baselines were recorded exactly that way, on a single-CPU
# host, and this gate then compared noise against noise.) Legacy JSON
# without the per-leg pool_width field is treated as width 1.
fresh_width=$(vals "$tmp/cluster.json" pool_width | maxof)
committed_width=$(vals BENCH_cluster.json pool_width | maxof)
: "${fresh_width:=1}" "${committed_width:=1}"
if [[ "${fresh_width%%.*}" -le 1 || "${committed_width%%.*}" -le 1 ]]; then
    echo "skip cluster parallel speedup (pool width: fresh=$fresh_width," \
        "committed=$committed_width; serial-vs-serial ratios are noise)"
else
    check_ge "cluster parallel speedup" \
        "$(vals "$tmp/cluster.json" speedup | maxof)" \
        "$(vals BENCH_cluster.json speedup | minof)"
fi

# The committed 49k-agent leg carries an absolute claim the docs repeat
# (README, DESIGN §12.4): launch under 10 ms. That is a property of the
# committed recording, not of this machine, so it is checked statically —
# a future re-record that regresses past it should fail loudly here, not
# drift silently.
committed_launch=$(grep '"agents": 49152' BENCH_cluster.json |
    grep -o '"launch_ms": *[0-9.]*' | sed 's/.*: *//')
if [[ -n "$committed_launch" ]]; then
    if awk -v l="$committed_launch" 'BEGIN { exit !(l + 0 < 10) }'; then
        echo "ok   committed 49k launch_ms      $committed_launch < 10"
    else
        echo "FAIL committed 49k launch_ms $committed_launch >= 10 ms"
        fail=1
    fi
fi

echo "==> telemetry_sweep --quick"
./target/release/telemetry_sweep --quick --out "$tmp/telemetry.json"
# overhead_pct is (on/off - 1)*100; compare as on/off ratios.
fresh_ratio=$(vals "$tmp/telemetry.json" overhead_pct | maxof |
    awk '{print 1 + $1 / 100}')
committed_ratio=$(vals BENCH_telemetry.json overhead_pct | maxof |
    awk '{print 1 + $1 / 100}')
check_le "telemetry on/off ratio" "$fresh_ratio" "$committed_ratio"

echo "==> accuracy_sweep --quick"
./target/release/accuracy_sweep --quick --out "$tmp/accuracy.json"
check_ge "emon cadence growth" \
    "$(vals "$tmp/accuracy.json" emon_cadence_growth)" \
    "$(vals BENCH_accuracy.json emon_cadence_growth)"
check_ge "nvml cadence growth" \
    "$(vals "$tmp/accuracy.json" nvml_cadence_growth)" \
    "$(vals BENCH_accuracy.json nvml_cadence_growth)"
check_ge "occ cadence growth" \
    "$(vals "$tmp/accuracy.json" occ_cadence_growth)" \
    "$(vals BENCH_accuracy.json occ_cadence_growth)"
check_ge "emon burst factor" \
    "$(vals "$tmp/accuracy.json" emon_burst_factor)" \
    "$(vals BENCH_accuracy.json emon_burst_factor)"
# Exactness and the tick bound are invariants, not ratios: no tolerance.
if [[ "$(vals "$tmp/accuracy.json" rapl_within_tick)" != "1" ]]; then
    echo "FAIL rapl constant-workload error exceeds the one-tick bound"
    fail=1
else
    echo "ok   rapl error within one tick"
fi
if vals "$tmp/accuracy.json" exact | grep -qv '^1$'; then
    echo "FAIL an error decomposition no longer closes exactly"
    fail=1
else
    echo "ok   all decompositions close exactly"
fi
# The OCC's digital chain has no analog noise leg: its noise_j is a
# structural zero on every schedule, fresh and committed alike.
occ_zero_ok=1
for f in "$tmp/accuracy.json" BENCH_accuracy.json; do
    if vals "$f" occ_noise_zero | grep -qv '^1$'; then
        echo "FAIL $f: the OCC noise leg is no longer a structural zero"
        fail=1
        occ_zero_ok=0
    fi
done
if [[ $occ_zero_ok -eq 1 ]]; then
    echo "ok   occ noise leg structurally zero (fresh + committed)"
fi

echo "==> query_sweep --quick"
./target/release/query_sweep --quick --out "$tmp/query.json"
# Both are invariants, not ratios: they must hold at any speed on any
# machine, so there is no tolerance and no committed-baseline comparison.
if vals "$tmp/query.json" exact | grep -qv '^1$'; then
    echo "FAIL a rollup tier no longer equals the raw fold bit for bit"
    fail=1
else
    echo "ok   rollup tiers exact vs raw"
fi
if vals "$tmp/query.json" coherent | grep -qv '^1$'; then
    echo "FAIL threaded query clients diverged from the serial referee"
    fail=1
else
    echo "ok   threaded clients match serial"
fi
# The committed recording must also claim both invariants, so a full-sweep
# re-record that regressed them cannot land silently.
for key in exact coherent; do
    if vals BENCH_query.json "$key" | grep -qv '^1$'; then
        echo "FAIL committed BENCH_query.json has a leg with $key != 1"
        fail=1
    fi
done

echo "==> transport_sweep --quick"
./target/release/transport_sweep --quick --out "$tmp/transport.json"
# All three are virtual-time invariants — no tolerance, no baseline ratio.
if vals "$tmp/transport.json" identical | grep -qv '^1$'; then
    echo "FAIL a zero-latency remote run is no longer byte-identical to local"
    fail=1
else
    echo "ok   remote-ideal byte-identical to local"
fi
if vals "$tmp/transport.json" exact | grep -qv '^1$'; then
    echo "FAIL link latency no longer lands in the ledgers exactly"
    fail=1
else
    echo "ok   latency exact in overhead + timestamps"
fi
if vals "$tmp/transport.json" reconciled | grep -qv '^1$'; then
    echo "FAIL a faulty-link wire/completeness ledger stopped reconciling"
    fail=1
else
    echo "ok   faulty-link ledgers reconcile"
fi
# The committed recording must claim the same invariants, and carries the
# round-trip percentiles for trend reading (recorded, never gated).
for key in identical exact reconciled; do
    if vals BENCH_transport.json "$key" | grep -qv '^1$'; then
        echo "FAIL committed BENCH_transport.json has a row with $key != 1"
        fail=1
    fi
done
echo "     committed rtt p50/p99 (ns):" \
    "$(vals BENCH_transport.json rtt_p50_ns | tr '\n' ' ')/" \
    "$(vals BENCH_transport.json rtt_p99_ns | tr '\n' ' ')"

echo "==> scenario_sweep --quick"
./target/release/scenario_sweep --quick --out "$tmp/scenarios.json"
# Closed-loop invariants and same-seed determinism are exact virtual-time
# claims — no tolerance, and the committed recording must make them too,
# so a full-sweep re-record that regressed cannot land silently.
scen_ok=1
for f in "$tmp/scenarios.json" BENCH_scenarios.json; do
    if vals "$f" invariant | grep -qv '^1$'; then
        echo "FAIL $f: a scenario replication violated its invariants"
        fail=1
        scen_ok=0
    fi
    if vals "$f" deterministic | grep -qv '^1$'; then
        echo "FAIL $f: the scenario determinism referee failed"
        fail=1
        scen_ok=0
    fi
    # An empty or truncated file must not pass by matching nothing.
    if [[ "$(vals "$f" invariant | wc -l)" -lt 4 ]]; then
        echo "FAIL $f: fewer than one replication row per experiment"
        fail=1
        scen_ok=0
    fi
done
if [[ $scen_ok -eq 1 ]]; then
    echo "ok   scenario invariants hold, replications deterministic (fresh + committed)"
fi

if [[ $fail -ne 0 ]]; then
    echo "bench ratios regressed; if intentional, regenerate the BENCH_*.json"
    echo "files with the full (non --quick) sweeps and commit them"
    exit 1
fi
echo "BENCH OK"
