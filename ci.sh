#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
#   ./ci.sh          # everything (what a PR must pass)
#   ./ci.sh --quick  # skip the release build, debug tests only
#
# Lints are hard errors (-D warnings) so the tree stays clippy-clean.
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The core library crates must not unwrap in non-test code: user-reachable
# failures are typed errors, lock poisoning is recovered explicitly
# (PoisonError::into_inner), and rank panics resurface with their rank id.
echo "==> cargo clippy (simkit, moneq libs) -- -D clippy::unwrap_used"
cargo clippy -p simkit -p moneq --lib -- -D warnings -D clippy::unwrap_used

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test --workspace"
cargo test --workspace -q --no-fail-fast

echo "CI OK"
