#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
#   ./ci.sh          # everything (what a PR must pass)
#   ./ci.sh --quick  # skip the release build and the doc gate, debug tests only
#
# Lints are hard errors (-D warnings) so the tree stays clippy-clean.
# Every stage prints its own wall-clock so CI-time regressions are
# attributable to a stage, not just to "the build got slower".
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

# Run one named, timed stage. The command is a single string (eval'd) so
# stages can carry env vars and redirections.
stage() {
    local name="$1" cmd="$2"
    echo "==> $name"
    local t0=$SECONDS
    eval "$cmd"
    echo "    ($name: $((SECONDS - t0))s)"
}

skipped() {
    echo "==> SKIPPED ($1): $2"
}

stage "cargo fmt --check" \
    "cargo fmt --check"

stage "cargo clippy --workspace --all-targets -- -D warnings" \
    "cargo clippy --workspace --all-targets -- -D warnings"

# The core library crates must not unwrap in non-test code: user-reachable
# failures are typed errors, lock poisoning is recovered explicitly
# (PoisonError::into_inner), and rank panics resurface with their rank id.
stage "cargo clippy (simkit, moneq libs) -- -D clippy::unwrap_used" \
    "cargo clippy -p simkit -p moneq --lib -- -D warnings -D clippy::unwrap_used"

if [[ $quick -eq 0 ]]; then
    stage "cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)" \
        "RUSTDOCFLAGS='-D warnings' cargo doc --workspace --no-deps --quiet"
else
    skipped "--quick" "cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
fi

# The examples are documentation that compiles; keep them compiling.
stage "cargo build --examples" \
    "cargo build --examples --quiet"

if [[ $quick -eq 0 ]]; then
    stage "cargo build --release" \
        "cargo build --release"
else
    skipped "--quick" "cargo build --release"
fi

stage "cargo test --workspace" \
    "cargo test --workspace -q --no-fail-fast"

# Determinism gate: every headline number is re-derived and compared to the
# paper's value programmatically; `repro report` exits non-zero if any of
# the agreement checks disagree, so a drifting constant fails the build.
if [[ $quick -eq 0 ]]; then
    stage "repro report (paper-agreement gate)" \
        "cargo run --release -q -p envmon-bench --bin repro -- report > /dev/null"
else
    stage "repro report (paper-agreement gate)" \
        "cargo run -q -p envmon-bench --bin repro -- report > /dev/null"
fi

echo "CI OK"
