#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
#
#   ./ci.sh          # everything (what a PR must pass)
#   ./ci.sh --quick  # skip the release build and the doc gate, debug tests
#                    # only, and cut proptest case counts (PROPTEST_CASES=32)
#
# Lints are hard errors (-D warnings) so the tree stays clippy-clean.
# Every stage prints its own wall-clock so CI-time regressions are
# attributable to a stage, not just to "the build got slower"; the test
# suite runs as named stages (unit / property / golden / scale) so a slow
# property sweep cannot hide behind "tests got slower".
# -E (errtrace) so the ERR trap below fires for failures inside the
# stage() function, not just at top level.
set -Eeuo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

# One knob paces every property suite: the vendored proptest reads
# PROPTEST_CASES (dev default 64; ProptestConfig::scaled keeps the heavy
# suites proportional). Quick mode trades depth for stage budget; full
# mode runs 4x the dev default. An explicit PROPTEST_CASES wins.
if [[ $quick -eq 1 ]]; then
    pt_cases="${PROPTEST_CASES:-32}"
else
    pt_cases="${PROPTEST_CASES:-256}"
fi

# Run one named, timed stage. The command is a single string (eval'd) so
# stages can carry env vars and redirections. Each stage's wall clock is
# recorded for the end-of-run summary table, and the stage name is held in
# current_stage so a failure is attributed by name, not by scrollback.
stage_names=()
stage_secs=()
current_stage=""
stage() {
    local name="$1" cmd="$2"
    current_stage="$name"
    echo "==> $name"
    local t0=$SECONDS
    eval "$cmd"
    stage_names+=("$name")
    stage_secs+=("$((SECONDS - t0))")
    current_stage=""
}

skipped() {
    echo "==> SKIPPED ($1): $2"
    stage_names+=("$2 [skipped]")
    stage_secs+=("-")
}

# Name the failing stage on any error so a red run reads "FAILED in stage:
# <name>" instead of making the reader walk the transcript backwards.
on_err() {
    if [[ -n "$current_stage" ]]; then
        echo "CI FAILED in stage: $current_stage" >&2
    else
        echo "CI FAILED (outside any stage)" >&2
    fi
}
trap on_err ERR

# Golden-drift guard: a CI run must verify the committed goldens
# byte-for-byte, never re-bless them. A GOLDEN_BLESS that leaks into CI
# would turn the conformance gate into a no-op that silently rewrites the
# reference outputs, so it is a hard error here.
if [[ -n "${CI:-}" && -n "${GOLDEN_BLESS:-}" ]]; then
    echo "error: GOLDEN_BLESS is set in a CI run; goldens must be" >&2
    echo "re-blessed locally and committed, never inside the gate." >&2
    exit 1
fi

stage "cargo fmt --check" \
    "cargo fmt --check"

stage "cargo clippy --workspace --all-targets -- -D warnings" \
    "cargo clippy --workspace --all-targets -- -D warnings"

# The core library crates must not unwrap in non-test code: user-reachable
# failures are typed errors, lock poisoning is recovered explicitly
# (PoisonError::into_inner), and rank panics resurface with their rank id.
stage "cargo clippy (simkit, moneq libs) -- -D clippy::unwrap_used" \
    "cargo clippy -p simkit -p moneq --lib -- -D warnings -D clippy::unwrap_used"

# Workspace coverage: every first-party crate under crates/ must be a
# workspace member, carry #![deny(missing_docs)], and appear in the README
# crate map. A crate that slips any of the three is half-integrated: it
# builds on someone's machine but ducks the doc lint and the reader's map.
# The vendored offline shims are exempt (they mirror external APIs).
workspace_coverage() {
    local vendored='crossbeam|parking_lot|proptest|criterion'
    local members crate ok=0
    members="$(cargo metadata --no-deps --format-version 1 --offline \
        | jq -r '.packages[].name')"
    for dir in crates/*/; do
        crate="$(basename "$dir")"
        [[ "$crate" =~ ^($vendored)$ ]] && continue
        if ! grep -qx "$crate" <<<"$members"; then
            echo "    $crate: not a workspace member" >&2
            ok=1
        fi
        if ! grep -q 'deny(missing_docs)' "$dir/src/lib.rs"; then
            echo "    $crate: src/lib.rs lacks #![deny(missing_docs)]" >&2
            ok=1
        fi
        if ! grep -q "crates/$crate" README.md; then
            echo "    $crate: missing from the README crate map" >&2
            ok=1
        fi
    done
    return $ok
}

stage "workspace coverage (membership, missing_docs, README map)" \
    "workspace_coverage"

if [[ $quick -eq 0 ]]; then
    stage "cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)" \
        "RUSTDOCFLAGS='-D warnings' cargo doc --workspace --no-deps --quiet"
else
    skipped "--quick" "cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
fi

# The examples are documentation that compiles; keep them compiling.
stage "cargo build --examples" \
    "cargo build --examples --quiet"

if [[ $quick -eq 0 ]]; then
    stage "cargo build --release" \
        "cargo build --release"
else
    skipped "--quick" "cargo build --release"
fi

# The test suite, split so each class of test accounts its own time.
# unit: every crate's #[cfg(test)] modules and bin self-tests.
stage "tests: unit (libs, bins)" \
    "cargo test --workspace --lib --bins -q --no-fail-fast"

# doc: every doctest in the workspace. A separate stage because doctests
# compile one binary per example — when this stage's wall clock creeps,
# the fix (consolidate or no_run an example) differs from a slow unit run.
stage "tests: doc (workspace doctests)" \
    "cargo test --workspace --doc -q --no-fail-fast"

# property: every proptest suite in the workspace, paced by PROPTEST_CASES.
stage "tests: property (PROPTEST_CASES=$pt_cases)" \
    "PROPTEST_CASES=$pt_cases cargo test -q --no-fail-fast \
        --test accuracy_prop --test cluster_parallel_prop \
        --test fault_prop --test occ_prop --test output_roundtrip_prop \
        --test scenario_prop --test serve_prop --test telemetry_prop \
        --test transport_prop &&
     PROPTEST_CASES=$pt_cases cargo test -q --no-fail-fast \
        -p bgq-sim -p hpc-workloads -p mic-sim -p nvml-sim -p occ-sim \
        -p powermodel -p rapl-sim -p simkit --test proptests &&
     PROPTEST_CASES=$pt_cases cargo test -q --no-fail-fast \
        -p moneq --test cache_prop --test tags_prop"

# golden: byte-exact conformance of the paper-facing output formats
# (tests/golden/*.txt; GOLDEN_BLESS=1 re-blesses after intended changes).
stage "tests: golden (conformance)" \
    "cargo test -q --no-fail-fast \
        --test golden_conformance --test scenario_golden \
        --test figure_shapes --test listing1_all_backends"

# scenarios: the two catalog entry points (repro scenarios, scenario_sweep)
# agree on replication seeds, and the examples' demonstration loops hold as
# assertions instead of printouts.
stage "tests: scenarios (seed agreement, example promotions)" \
    "cargo test -q --no-fail-fast --test scenario_examples &&
     cargo test -q --no-fail-fast -p envmon-bench --test scenario_agreement"

# scale: the Mira-scale cluster drive.
stage "tests: scale (cluster)" \
    "cargo test -q --no-fail-fast --test cluster_scale"

# Determinism gate: every headline number is re-derived and compared to the
# paper's value programmatically; `repro report` exits non-zero if any of
# the agreement checks disagree, so a drifting constant fails the build.
if [[ $quick -eq 0 ]]; then
    stage "repro report (paper-agreement gate)" \
        "cargo run --release -q -p envmon-bench --bin repro -- report > /dev/null"
else
    stage "repro report (paper-agreement gate)" \
        "cargo run -q -p envmon-bench --bin repro -- report > /dev/null"
fi

# Perf smoke: the telemetry layer's headline claim — enabling it costs
# <10% wall clock at the paper's full-Mira fan-out — as a pass/fail gate,
# not a recording. Release-only: debug wall clock says nothing about the
# optimized hot path (quick mode skips the release build entirely).
if [[ $quick -eq 0 ]]; then
    stage "perf smoke (telemetry overhead <10% @ 1536 agents)" \
        "cargo run --release -q -p envmon-bench --bin telemetry_sweep -- \
            --smoke --gate 10 --out target/telemetry_smoke.json"
else
    skipped "--quick" "perf smoke (telemetry overhead gate needs release)"
fi

# Transport smoke: the wire layer's defining invariants — remote over the
# ideal link byte-equals local, latency lands in the ledgers exactly,
# faulty-run ledgers reconcile — asserted by the sweep binary itself.
if [[ $quick -eq 0 ]]; then
    stage "transport smoke (remote byte-identity + exact latency)" \
        "cargo run --release -q -p envmon-bench --bin transport_sweep -- \
            --smoke --out target/transport_smoke.json"
else
    stage "transport smoke (remote byte-identity + exact latency)" \
        "cargo run -q -p envmon-bench --bin transport_sweep -- \
            --smoke --out target/transport_smoke.json"
fi

# Scenario smoke: the closed-loop catalog (DESIGN.md §16) with every
# machine-checked invariant asserted in-process by the sweep binary, plus
# its determinism referee byte-comparing replication-0 artifacts. Quick
# mode caps each experiment at 2 replications; full runs the catalog's 5.
if [[ $quick -eq 0 ]]; then
    stage "scenario smoke (closed-loop invariants, 5 reps)" \
        "cargo run --release -q -p envmon-bench --bin scenario_sweep -- \
            --out target/scenario_smoke.json"
else
    stage "scenario smoke (closed-loop invariants, 2 reps)" \
        "cargo run -q -p envmon-bench --bin scenario_sweep -- \
            --quick --out target/scenario_smoke.json"
fi

# Per-stage timing summary: the same numbers each stage already printed,
# gathered into one table so a CI-time regression is attributable at a
# glance (and so skipped stages are visible as skipped, not just absent).
echo
echo "stage timing summary"
printf '%7s  %s\n' "secs" "stage"
total=0
for i in "${!stage_names[@]}"; do
    printf '%7s  %s\n' "${stage_secs[$i]}" "${stage_names[$i]}"
    if [[ "${stage_secs[$i]}" != "-" ]]; then
        total=$((total + stage_secs[i]))
    fi
done
printf '%7s  %s\n' "$total" "total"

echo "CI OK"
